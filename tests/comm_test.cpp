// Tests for the simulated communication substrate: topology/cost model,
// fabric point-to-point, every collective on group sizes 1..8 (including
// non-powers-of-two), communicator split, clock synchronisation and stats.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "comm/cluster.hpp"
#include "comm/communicator.hpp"
#include "comm/fabric.hpp"
#include "comm/topology.hpp"
#include "util/rng.hpp"

namespace oc = optimus::comm;

// ---------------------------------------------------------------------------
// Topology and cost model
// ---------------------------------------------------------------------------

TEST(Topology, NaivePacksRanksSequentially) {
  oc::Topology topo(16, 4, oc::Arrangement::kNaive, /*mesh_q=*/4);
  EXPECT_EQ(topo.num_nodes(), 4);
  EXPECT_EQ(topo.node_of(0), 0);
  EXPECT_EQ(topo.node_of(3), 0);
  EXPECT_EQ(topo.node_of(4), 1);
  EXPECT_EQ(topo.node_of(15), 3);
}

TEST(Topology, NaiveMeshRowsAreIntraNodeColumnsAreNot) {
  // Fig. 8a: with row-major ranks and 4 GPUs per node, a mesh row is one node
  // and a mesh column touches every node.
  oc::Topology topo(16, 4, oc::Arrangement::kNaive, 4);
  const std::vector<int> row0{0, 1, 2, 3};
  const std::vector<int> col0{0, 4, 8, 12};
  EXPECT_TRUE(topo.single_node(row0));
  EXPECT_FALSE(topo.single_node(col0));
  EXPECT_EQ(topo.max_members_per_node(col0), 1);
}

TEST(Topology, BunchedTilesKeepSubSquaresTogether) {
  // Fig. 8b: 2×2 mesh tiles per node; both rows and columns then span exactly
  // two nodes with two members on each.
  oc::Topology topo(16, 4, oc::Arrangement::kBunched, 4);
  EXPECT_EQ(topo.node_of(0), topo.node_of(1));   // (0,0) and (0,1)
  EXPECT_EQ(topo.node_of(0), topo.node_of(4));   // (0,0) and (1,0)
  EXPECT_EQ(topo.node_of(0), topo.node_of(5));   // (0,0) and (1,1)
  EXPECT_NE(topo.node_of(0), topo.node_of(2));
  const std::vector<int> row0{0, 1, 2, 3};
  const std::vector<int> col0{0, 4, 8, 12};
  EXPECT_EQ(topo.max_members_per_node(row0), 2);
  EXPECT_EQ(topo.max_members_per_node(col0), 2);
}

TEST(Topology, BunchedWithoutMeshFallsBackToNaive) {
  oc::Topology topo(8, 4, oc::Arrangement::kBunched, /*mesh_q=*/0);
  EXPECT_EQ(topo.node_of(5), 1);
}

TEST(Topology, ParseArrangement) {
  EXPECT_EQ(oc::parse_arrangement("naive"), oc::Arrangement::kNaive);
  EXPECT_EQ(oc::parse_arrangement("bunched"), oc::Arrangement::kBunched);
  EXPECT_THROW(oc::parse_arrangement("fancy"), optimus::util::CheckError);
}

TEST(CostModel, TreeTimeFollowsLogFormula) {
  oc::Topology topo(8, 8, oc::Arrangement::kNaive);  // all on one node
  oc::MachineParams mp;
  mp.alpha = 0.0;
  mp.beta_intra = 2.0;
  oc::CostModel cost(topo, mp);
  const std::vector<int> group{0, 1, 2, 3};
  // ceil(log2 4) = 2 rounds × β × B
  EXPECT_DOUBLE_EQ(cost.tree_time(group, 10), 2 * 2.0 * 10);
  const std::vector<int> three{0, 1, 2};
  EXPECT_DOUBLE_EQ(cost.tree_time(three, 10), 2 * 2.0 * 10);  // ceil(log2 3) = 2
}

TEST(CostModel, RingAllReduceMatchesPaperEq5) {
  oc::Topology topo(4, 4, oc::Arrangement::kNaive);
  oc::MachineParams mp;
  mp.alpha = 0.0;
  mp.beta_intra = 1.0;
  oc::CostModel cost(topo, mp);
  const std::vector<int> group{0, 1, 2, 3};
  // 2(p−1)βB/p with p=4, B=100 → 150.
  EXPECT_DOUBLE_EQ(cost.ring_allreduce_time(group, 100), 150.0);
}

TEST(CostModel, ContentionPenalisesNaiveColumns) {
  // Naive columns put 1 member per node → all 4 columns share each NIC → 4×.
  // Bunched puts 2 members per node → pipelined trees hide the sharing
  // (gpn/m² = 1, matching the paper's measured bunched runs).
  oc::MachineParams mp;
  mp.alpha = 0.0;
  mp.beta_intra = 1.0;
  mp.beta_inter = 1.0;
  oc::Topology naive(16, 4, oc::Arrangement::kNaive, 4);
  oc::Topology bunched(16, 4, oc::Arrangement::kBunched, 4);
  oc::CostModel cn(naive, mp), cb(bunched, mp);
  const std::vector<int> col0{0, 4, 8, 12};
  EXPECT_DOUBLE_EQ(cn.beta_eff(col0), 4.0);
  EXPECT_DOUBLE_EQ(cb.beta_eff(col0), 1.0);
}

TEST(CostModel, SingleRankGroupsAreFree) {
  oc::Topology topo(4, 4, oc::Arrangement::kNaive);
  oc::CostModel cost(topo, oc::MachineParams{});
  EXPECT_DOUBLE_EQ(cost.tree_time({2}, 1000), 0.0);
  EXPECT_DOUBLE_EQ(cost.ring_allreduce_time({2}, 1000), 0.0);
}

TEST(CostModel, Log2Ceil) {
  EXPECT_EQ(oc::log2_ceil(1), 0);
  EXPECT_EQ(oc::log2_ceil(2), 1);
  EXPECT_EQ(oc::log2_ceil(3), 2);
  EXPECT_EQ(oc::log2_ceil(8), 3);
  EXPECT_EQ(oc::log2_ceil(9), 4);
}

// ---------------------------------------------------------------------------
// Fabric point-to-point
// ---------------------------------------------------------------------------

TEST(Fabric, TagMatchingAllowsOutOfOrderArrival) {
  oc::Fabric fabric(2);
  const int a = 1, b = 2;
  fabric.send(0, 1, /*tag=*/20, &b, sizeof(b));
  fabric.send(0, 1, /*tag=*/10, &a, sizeof(a));
  int out = 0;
  fabric.recv(1, 0, 10, &out, sizeof(out));
  EXPECT_EQ(out, 1);
  fabric.recv(1, 0, 20, &out, sizeof(out));
  EXPECT_EQ(out, 2);
}

TEST(Fabric, FifoPerSourceAndTag) {
  oc::Fabric fabric(2);
  for (int i = 0; i < 5; ++i) fabric.send(0, 1, 7, &i, sizeof(i));
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    fabric.recv(1, 0, 7, &out, sizeof(out));
    EXPECT_EQ(out, i);
  }
}

TEST(Fabric, SizeMismatchThrows) {
  oc::Fabric fabric(2);
  const double x = 1.0;
  fabric.send(0, 1, 3, &x, sizeof(x));
  float out;
  EXPECT_THROW(fabric.recv(1, 0, 3, &out, sizeof(out)), optimus::util::CheckError);
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

namespace {

class CollectiveSweep : public ::testing::TestWithParam<int> {};

}  // namespace

TEST_P(CollectiveSweep, BroadcastDeliversRootData) {
  const int p = GetParam();
  for (int root = 0; root < p; root += std::max(1, p - 1)) {
    oc::run_cluster(p, [&](oc::Context& ctx) {
      std::vector<double> data(17, ctx.rank == root ? 3.25 : 0.0);
      ctx.world.broadcast(data.data(), 17, root);
      for (double v : data) ASSERT_DOUBLE_EQ(v, 3.25);
    });
  }
}

TEST_P(CollectiveSweep, ReduceSumsAtRoot) {
  const int p = GetParam();
  const int root = p - 1;
  oc::run_cluster(p, [&](oc::Context& ctx) {
    std::vector<double> data(9);
    for (int i = 0; i < 9; ++i) data[i] = ctx.rank + i * 0.5;
    ctx.world.reduce(data.data(), 9, root);
    if (ctx.rank == root) {
      const double rank_sum = p * (p - 1) / 2.0;
      for (int i = 0; i < 9; ++i) ASSERT_NEAR(data[i], rank_sum + p * i * 0.5, 1e-12);
    }
  });
}

TEST_P(CollectiveSweep, AllReduceSumsEverywhere) {
  const int p = GetParam();
  oc::run_cluster(p, [&](oc::Context& ctx) {
    // 23 elements exercises uneven ring chunks for every p in the sweep.
    std::vector<double> data(23);
    for (int i = 0; i < 23; ++i) data[i] = (ctx.rank + 1) * (i + 1);
    ctx.world.all_reduce(data.data(), 23);
    const double rank_sum = p * (p + 1) / 2.0;
    for (int i = 0; i < 23; ++i) ASSERT_NEAR(data[i], rank_sum * (i + 1), 1e-12);
  });
}

TEST_P(CollectiveSweep, AllReduceMax) {
  const int p = GetParam();
  oc::run_cluster(p, [&](oc::Context& ctx) {
    std::vector<double> data{static_cast<double>(ctx.rank), -static_cast<double>(ctx.rank)};
    ctx.world.all_reduce_max(data.data(), 2);
    ASSERT_DOUBLE_EQ(data[0], p - 1);
    ASSERT_DOUBLE_EQ(data[1], 0.0);
  });
}

TEST_P(CollectiveSweep, AllGatherOrdersByRank) {
  const int p = GetParam();
  oc::run_cluster(p, [&](oc::Context& ctx) {
    std::vector<double> mine(3, ctx.rank * 10.0);
    std::vector<double> out(3 * p, -1.0);
    ctx.world.all_gather(mine.data(), 3, out.data());
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i < 3; ++i) ASSERT_DOUBLE_EQ(out[r * 3 + i], r * 10.0);
    }
  });
}

TEST_P(CollectiveSweep, ReduceScatterDeliversOwnChunk) {
  const int p = GetParam();
  oc::run_cluster(p, [&](oc::Context& ctx) {
    const int n = 4;  // per-chunk elements
    std::vector<double> data(n * p);
    for (int c = 0; c < p; ++c) {
      for (int i = 0; i < n; ++i) data[c * n + i] = (ctx.rank + 1) + c * 100.0 + i;
    }
    std::vector<double> out(n, -1);
    ctx.world.reduce_scatter(data.data(), n, out.data());
    const double rank_sum = p * (p + 1) / 2.0;
    for (int i = 0; i < n; ++i) {
      ASSERT_NEAR(out[i], rank_sum + p * (ctx.rank * 100.0 + i), 1e-12);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, CollectiveSweep, ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Collectives, SplitFormsRowGroups) {
  oc::run_cluster(6, [](oc::Context& ctx) {
    // Two colors: {0,1,2} and {3,4,5}.
    const int color = ctx.rank / 3;
    auto sub = ctx.world.split(color, ctx.rank);
    ASSERT_EQ(sub.size(), 3);
    ASSERT_EQ(sub.rank(), ctx.rank % 3);
    // A collective on the sub-communicator stays inside the color group.
    std::vector<double> v{static_cast<double>(ctx.rank)};
    sub.all_reduce(v.data(), 1);
    const double expected = color == 0 ? 0 + 1 + 2 : 3 + 4 + 5;
    ASSERT_DOUBLE_EQ(v[0], expected);
  });
}

TEST(Collectives, SplitOrdersByKeyThenRank) {
  oc::run_cluster(4, [](oc::Context& ctx) {
    // Reverse ordering via key.
    auto sub = ctx.world.split(0, -ctx.rank);
    ASSERT_EQ(sub.size(), 4);
    ASSERT_EQ(sub.rank(), 3 - ctx.rank);
  });
}

TEST(Collectives, ClocksAgreeAfterCollective) {
  oc::run_cluster(4, [](oc::Context& ctx) {
    // Give ranks wildly different amounts of "compute" first.
    ctx.device.on_mults(1000000ull * (ctx.rank + 1));
    std::vector<double> v(8, 1.0);
    ctx.world.all_reduce(v.data(), 8);
    const double mine = ctx.clock.now();
    std::vector<double> times(4, 0.0);
    // Compare through a side gather (max == min means all equal).
    times[ctx.rank] = mine;
    std::vector<double> all(4 * 4);
    ctx.world.all_gather(times.data(), 4, all.data());
    double mx = 0, mn = 1e300;
    for (int r = 0; r < 4; ++r) {
      const double t = all[r * 4 + r];
      mx = std::max(mx, t);
      mn = std::min(mn, t);
    }
    // All clocks were aligned by the first collective, then advanced by the
    // same (deterministic) amounts.
    ASSERT_NEAR(mx, mn, 1e-15);
  });
}

TEST(Collectives, ClockAdvancesByModelledTimes) {
  oc::Topology topo(4, 4, oc::Arrangement::kNaive);
  oc::MachineParams mp;
  mp.alpha = 0.0;
  mp.beta_intra = 1.0;
  mp.beta_inter = 1.0;
  mp.flop_rate = 1e30;
  oc::Cluster cluster(4, topo, mp);
  auto report = cluster.run([](oc::Context& ctx) {
    std::vector<float> v(100, 1.0f);
    ctx.world.all_reduce(v.data(), 100);  // 2·3/4 · 400 bytes = 600
    ctx.world.broadcast(v.data(), 100, 0);  // 2 rounds · 400 bytes = 800
  });
  for (const auto& r : report.ranks) EXPECT_DOUBLE_EQ(r.sim_time, 600.0 + 800.0);
}

TEST(Collectives, StatsRecordWeightedUnits) {
  auto report = oc::run_cluster(4, [](oc::Context& ctx) {
    std::vector<float> v(100, 1.0f);
    ctx.world.broadcast(v.data(), 100, 0);
    ctx.world.all_reduce(v.data(), 100);
  });
  const auto& s = report.ranks[0].stats;
  EXPECT_EQ(s.broadcast.calls, 1u);
  EXPECT_EQ(s.broadcast.elems, 100u);
  EXPECT_DOUBLE_EQ(s.broadcast.weighted, 100.0 * 2);       // log2(4) = 2
  EXPECT_DOUBLE_EQ(s.allreduce.weighted, 100.0 * 2 * 3 / 4.0);  // 2(p−1)/p
}

TEST(Collectives, DistributedReduceIsDeterministic) {
  // Same inputs, two runs → bitwise identical results (fixed reduce order).
  std::vector<float> first;
  for (int run = 0; run < 2; ++run) {
    oc::run_cluster(5, [&](oc::Context& ctx) {
      std::vector<float> data(31);
      optimus::util::Rng rng(900 + ctx.rank);
      for (auto& v : data) v = static_cast<float>(rng.uniform(-1, 1));
      ctx.world.all_reduce(data.data(), 31);
      if (ctx.rank == 0) {
        if (run == 0) {
          first = data;
        } else {
          for (int i = 0; i < 31; ++i) ASSERT_EQ(data[i], first[i]);
        }
      }
    });
  }
}

TEST(Collectives, UserPointToPointAdvancesClock) {
  auto report = oc::run_cluster(2, [](oc::Context& ctx) {
    double x = 42.0;
    if (ctx.rank == 0) {
      ctx.world.send(1, 5, &x, 1);
    } else {
      double y = 0;
      ctx.world.recv(0, 5, &y, 1);
      ASSERT_DOUBLE_EQ(y, 42.0);
    }
  });
  EXPECT_GT(report.ranks[0].sim_time, 0.0);
  EXPECT_EQ(report.ranks[0].stats.p2p_bytes, sizeof(double));
}

// ---------------------------------------------------------------------------
// Async collectives (ibroadcast / ireduce) and the overlap clock model
// ---------------------------------------------------------------------------

TEST(AsyncCollectives, IBroadcastMatchesBroadcastBitwise) {
  for (int p : {2, 3, 4, 5}) {
    oc::run_cluster(p, [&](oc::Context& ctx) {
      const int root = p - 1;
      std::vector<float> blocking(33), async(33);
      if (ctx.rank == root) {
        optimus::util::Rng rng(77);
        for (int i = 0; i < 33; ++i) blocking[i] = static_cast<float>(rng.uniform(-1, 1));
        async = blocking;
      }
      ctx.world.broadcast(blocking.data(), 33, root);
      oc::Request req = ctx.world.ibroadcast(async.data(), 33, root);
      req.wait();
      for (int i = 0; i < 33; ++i) ASSERT_EQ(async[i], blocking[i]);
    });
  }
}

TEST(AsyncCollectives, IReduceMatchesReduceBitwise) {
  // Float sums are order-sensitive; the async reduce must accumulate children
  // in exactly the blocking order to be bitwise identical (0 ULPs).
  for (int p : {2, 3, 4, 5, 8}) {
    oc::run_cluster(p, [&](oc::Context& ctx) {
      std::vector<float> blocking(29), async(29);
      optimus::util::Rng rng(300 + ctx.rank);
      for (int i = 0; i < 29; ++i) {
        blocking[i] = static_cast<float>(rng.uniform(-1, 1));
        async[i] = blocking[i];
      }
      ctx.world.reduce(blocking.data(), 29, /*root=*/0);
      oc::Request req = ctx.world.ireduce(async.data(), 29, /*root=*/0);
      req.wait();
      if (ctx.rank == 0) {
        for (int i = 0; i < 29; ++i) ASSERT_EQ(async[i], blocking[i]);
      }
    });
  }
}

TEST(AsyncCollectives, WaitCostsMaxOfCommAndCompute) {
  // Unit-cost machine: transfer dt for a 400-byte broadcast on 4 ranks is
  // exactly 800 (2 tree rounds), compute_time(mults) == mults.
  oc::Topology topo(4, 4, oc::Arrangement::kNaive);
  oc::MachineParams mp;
  mp.alpha = 0.0;
  mp.beta_intra = 1.0;
  mp.beta_inter = 1.0;
  mp.flop_rate = 1.0;
  for (const std::uint64_t mults : {500ull, 1000ull}) {
    oc::Cluster cluster(4, topo, mp);
    auto report = cluster.run([&](oc::Context& ctx) {
      std::vector<float> v(100, 1.0f);
      oc::Request req = ctx.world.ibroadcast(v.data(), 100, 0);
      ctx.device.on_mults(mults);  // overlapped compute
      req.wait();
    });
    // Overlapped step costs max(comm, compute), not the sum.
    const double expected = std::max(800.0, static_cast<double>(mults));
    for (const auto& r : report.ranks) EXPECT_DOUBLE_EQ(r.sim_time, expected);
  }
}

TEST(AsyncCollectives, BackToBackIssuesSerialiseOnOneLink) {
  // Two in-flight broadcasts on the same communicator cannot overlap each
  // other: the second's transfer starts when the first's finishes.
  oc::Topology topo(4, 4, oc::Arrangement::kNaive);
  oc::MachineParams mp;
  mp.alpha = 0.0;
  mp.beta_intra = 1.0;
  mp.beta_inter = 1.0;
  mp.flop_rate = 1e30;
  oc::Cluster cluster(4, topo, mp);
  auto report = cluster.run([](oc::Context& ctx) {
    std::vector<float> a(100, 1.0f), b(100, 2.0f);
    oc::Request ra = ctx.world.ibroadcast(a.data(), 100, 0);
    oc::Request rb = ctx.world.ibroadcast(b.data(), 100, 0);
    ra.wait();
    rb.wait();
  });
  for (const auto& r : report.ranks) EXPECT_DOUBLE_EQ(r.sim_time, 800.0 + 800.0);
}

TEST(AsyncCollectives, ChunkedBroadcastIsCheaperAndBitwise) {
  // 256 KiB on a depth-2 tree over inter-node links (one GPU per node) with
  // default machine constants triggers the chunked streaming plan; it must
  // beat the plain tree time and deliver the identical payload.
  const int p = 4;
  const std::size_t n = 32768;  // doubles → 256 KiB
  oc::Topology topo(p, /*gpus_per_node=*/1, oc::Arrangement::kNaive);
  const oc::MachineParams mp;
  const oc::CostModel cost(topo, mp);
  const std::vector<int> group{0, 1, 2, 3};
  const auto plan = cost.tree_plan(group, n * sizeof(double));
  EXPECT_GT(plan.chunks, 1);
  EXPECT_LT(plan.time, cost.tree_time(group, n * sizeof(double)));

  oc::Cluster cluster(p, topo, mp);
  auto report = cluster.run([&](oc::Context& ctx) {
    std::vector<double> data(n, 0.0);
    if (ctx.rank == 0) {
      optimus::util::Rng rng(41);
      for (auto& v : data) v = rng.uniform(-1, 1);
    }
    ctx.world.broadcast(data.data(), static_cast<optimus::tensor::index_t>(n), 0);
    optimus::util::Rng rng(41);
    for (const double v : data) ASSERT_EQ(v, rng.uniform(-1, 1));
  });
  for (const auto& r : report.ranks) EXPECT_DOUBLE_EQ(r.sim_time, plan.time);
}

TEST(AsyncCollectives, ChunkedReduceMatchesUnchunkedBitwise) {
  // Same payload reduced under a chunking cost model (default α) and a
  // non-chunking one (α = 0): the accumulation order per element is the same,
  // so the root's sums must agree to the bit.
  const int p = 4;
  const std::size_t n = 32768;
  std::vector<float> results[2];
  for (int variant = 0; variant < 2; ++variant) {
    oc::Topology topo(p, 4, oc::Arrangement::kNaive);
    oc::MachineParams mp;
    if (variant == 1) mp.alpha = 0.0;  // disables the chunked plan
    oc::Cluster cluster(p, topo, mp);
    cluster.run([&](oc::Context& ctx) {
      std::vector<float> data(n);
      optimus::util::Rng rng(500 + ctx.rank);
      for (auto& v : data) v = static_cast<float>(rng.uniform(-1, 1));
      ctx.world.reduce(data.data(), static_cast<optimus::tensor::index_t>(n), 0);
      if (ctx.rank == 0) results[variant] = data;
    });
  }
  ASSERT_EQ(results[0].size(), n);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(results[0][i], results[1][i]);
}

TEST(Cluster, BodyExceptionPropagates) {
  EXPECT_THROW(oc::run_cluster(1,
                               [](oc::Context&) {
                                 OPT_CHECK(false, "rank failure");
                               }),
               optimus::util::CheckError);
}

TEST(Cluster, ReportAggregatesPerRankAccounting) {
  auto report = oc::run_cluster(3, [](oc::Context& ctx) {
    optimus::tensor::Tensor t(optimus::tensor::Shape{256});  // 1 KiB
    ctx.device.on_mults(100 * (ctx.rank + 1));
    ctx.world.barrier();
  });
  ASSERT_EQ(report.ranks.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(report.ranks[r].mults, 100u * (r + 1));
    EXPECT_GE(report.ranks[r].peak_bytes, 1024u);
    EXPECT_EQ(report.ranks[r].live_bytes, 0u);
  }
  EXPECT_EQ(report.total_mults(), 600u);
}

TEST(Cluster, BarrierSynchronisesClocks) {
  oc::Topology topo(3, 4, oc::Arrangement::kNaive);
  oc::MachineParams mp;  // defaults, nonzero alpha
  oc::Cluster cluster(3, topo, mp);
  auto report = cluster.run([](oc::Context& ctx) {
    ctx.device.on_mults(5000000ull * (ctx.rank + 1));
    ctx.world.barrier();
  });
  const double t0 = report.ranks[0].sim_time;
  for (const auto& r : report.ranks) EXPECT_DOUBLE_EQ(r.sim_time, t0);
}
