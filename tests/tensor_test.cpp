// Tests for the tensor container, arena allocator and device accounting.

#include <gtest/gtest.h>

#include "tensor/arena.hpp"
#include "tensor/device_context.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace ot = optimus::tensor;
using ot::Shape;
using ot::Tensor;

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.last(), 4);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, EqualityAndEmpty) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
  Shape scalar;
  EXPECT_EQ(scalar.ndim(), 0);
  EXPECT_EQ(scalar.numel(), 1);
}

TEST(Shape, RejectsNegativeDims) { EXPECT_THROW(Shape({-1, 2}), optimus::util::CheckError); }

TEST(Tensor, FillAndIndex) {
  Tensor t(Shape{2, 3});
  t.fill(1.5f);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.at(0, 1) = 7.0f;
  EXPECT_FLOAT_EQ(t[1], 7.0f);  // row-major flat index
}

TEST(Tensor, CopySemanticsShareStorage) {
  Tensor a = Tensor::zeros(Shape{4});
  Tensor b = a;  // shallow
  b[0] = 9.0f;
  EXPECT_FLOAT_EQ(a[0], 9.0f);
  Tensor c = a.clone();  // deep
  c[1] = 3.0f;
  EXPECT_FLOAT_EQ(a[1], 0.0f);
}

TEST(Tensor, ReshapeSharesStorageAndChecksNumel) {
  Tensor a = Tensor::zeros(Shape{2, 6});
  Tensor b = a.reshape(Shape{3, 4});
  b.at(2, 3) = 5.0f;
  EXPECT_FLOAT_EQ(a.at(1, 5), 5.0f);
  EXPECT_THROW(a.reshape(Shape{5, 5}), optimus::util::CheckError);
}

TEST(Tensor, RowRangeViewsOuterDim) {
  Tensor a(Shape{4, 3});
  for (int i = 0; i < 12; ++i) a[i] = static_cast<float>(i);
  Tensor mid = a.row_range(1, 3);
  EXPECT_EQ(mid.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(mid.at(0, 0), 3.0f);
  mid.at(1, 2) = -1.0f;  // view writes through
  EXPECT_FLOAT_EQ(a.at(2, 2), -1.0f);
}

TEST(Tensor, FromVectorRoundTrip) {
  const std::vector<float> v{1, 2, 3, 4, 5, 6};
  Tensor t = Tensor::from_vector(Shape{2, 3}, v);
  EXPECT_EQ(t.to_vector(), v);
  EXPECT_THROW(Tensor::from_vector(Shape{2, 2}, v), optimus::util::CheckError);
}

TEST(Tensor, CopyFromChecksShape) {
  Tensor a = Tensor::zeros(Shape{2, 2});
  Tensor b = Tensor::full(Shape{2, 2}, 3.0f);
  a.copy_from(b);
  EXPECT_FLOAT_EQ(a.at(1, 1), 3.0f);
  Tensor c(Shape{4});
  EXPECT_THROW(a.copy_from(c), optimus::util::CheckError);
}

TEST(DeviceContext, TracksLiveAndPeakBytes) {
  ot::DeviceContext ctx;
  {
    ot::ScopedDevice scoped(ctx);
    Tensor a(Shape{256});  // 1 KiB
    EXPECT_EQ(ctx.bytes_live(), 1024u);
    {
      Tensor b(Shape{512});  // 2 KiB
      EXPECT_EQ(ctx.bytes_live(), 3072u);
      EXPECT_EQ(ctx.bytes_peak(), 3072u);
    }
    EXPECT_EQ(ctx.bytes_live(), 1024u);
    EXPECT_EQ(ctx.bytes_peak(), 3072u);
  }
  EXPECT_EQ(ctx.bytes_live(), 0u);
}

TEST(DeviceContext, ScopedInstallationNests) {
  ot::DeviceContext outer, inner;
  ot::ScopedDevice a(outer);
  Tensor t1(Shape{1});
  {
    ot::ScopedDevice b(inner);
    Tensor t2(Shape{2});
    EXPECT_EQ(inner.bytes_live(), 8u);
  }
  EXPECT_EQ(outer.bytes_live(), 4u);
  EXPECT_EQ(inner.bytes_live(), 0u);  // t2 freed inside
}

TEST(DeviceContext, TakeMultsDrainsIncrementally) {
  ot::DeviceContext ctx;
  ot::ScopedDevice scoped(ctx);
  ctx.on_mults(100);
  EXPECT_EQ(ctx.take_mults(), 100u);
  EXPECT_EQ(ctx.take_mults(), 0u);
  ctx.on_mults(50);
  EXPECT_EQ(ctx.take_mults(), 50u);
  EXPECT_EQ(ctx.mults_total(), 150u);
}

TEST(Arena, BumpAllocationAndReset) {
  ot::Arena arena("test", 1 << 12);
  auto a = arena.alloc<float>(Shape{16});
  auto b = arena.alloc<float>(Shape{16});
  EXPECT_NE(a.data(), b.data());
  const auto used = arena.used();
  EXPECT_GE(used, 2 * 16 * sizeof(float));
  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  auto c = arena.alloc<float>(Shape{16});
  EXPECT_EQ(c.data(), a.data());  // slab reused from the start
  EXPECT_EQ(arena.high_water(), used);
}

TEST(Arena, ExhaustionThrows) {
  ot::Arena arena("tiny", 128);
  (void)arena.alloc<float>(Shape{16});  // 64 bytes aligned
  EXPECT_THROW(arena.alloc<float>(Shape{32}), optimus::util::CheckError);
}

TEST(Arena, ChargedOnceToDeviceContext) {
  ot::DeviceContext ctx;
  ot::ScopedDevice scoped(ctx);
  {
    ot::Arena arena("acct", 4096);
    EXPECT_EQ(ctx.bytes_live(), 4096u);
    auto t = arena.alloc<float>(Shape{64});
    EXPECT_EQ(ctx.bytes_live(), 4096u);  // carving adds nothing
  }
  EXPECT_EQ(ctx.bytes_live(), 0u);
}

TEST(Arena, TensorsPinSlabBeyondArenaLifetime) {
  Tensor survivor;
  {
    ot::Arena arena("pin", 1024);
    survivor = arena.alloc<float>(Shape{8});
    survivor.fill(2.5f);
  }
  EXPECT_FLOAT_EQ(survivor[7], 2.5f);  // slab kept alive by the tensor
}

TEST(Arena, ZeroedAllocation) {
  ot::Arena arena("z", 1024);
  auto t = arena.alloc<float>(Shape{32});
  t.fill(9.0f);
  arena.reset();
  auto u = arena.alloc_zeros<float>(Shape{32});
  for (int i = 0; i < 32; ++i) EXPECT_FLOAT_EQ(u[i], 0.0f);
}
