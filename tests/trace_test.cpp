// Observability-layer tests: the simulation-aware tracer, Chrome-trace
// export/validation, metrics JSON, pool counters, rank-tagged logging — and
// the headline guarantee of the layer: measured per-device collective traffic
// equals the analytic Table-1 closed forms exactly, and tracing never
// perturbs numerics.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>

#include "comm/cluster.hpp"
#include "comm/obs_report.hpp"
#include "core/optimus_model.hpp"
#include "kernel/thread_pool.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "obs/json.hpp"
#include "obs/trace.hpp"
#include "perfmodel/validation.hpp"
#include "runtime/data.hpp"
#include "runtime/lr_schedule.hpp"
#include "runtime/optimizer.hpp"
#include "runtime/trainer.hpp"
#include "util/logging.hpp"

namespace oc = optimus::comm;
namespace ob = optimus::obs;
namespace ok = optimus::kernel;
namespace om = optimus::model;
namespace opm = optimus::perfmodel;
namespace ort = optimus::runtime;

namespace {

om::TransformerConfig engine_config() {
  om::TransformerConfig cfg;
  cfg.batch = 4;
  cfg.seq_len = 8;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 2;
  cfg.seed = 5;
  return cfg;
}

opm::Workload to_workload(const om::TransformerConfig& cfg) {
  opm::Workload w;
  w.b = cfg.batch;
  w.s = cfg.seq_len;
  w.h = cfg.hidden;
  w.n = cfg.heads;
  w.v = cfg.vocab;
  w.layers = cfg.layers;
  return w;
}

/// Fresh tracer state for the test body; disables + clears on exit so no
/// other test sees leftover spans.
struct TraceGuard {
  TraceGuard() {
    ob::set_enabled(false);
    ob::reset();
  }
  ~TraceGuard() {
    ob::set_enabled(false);
    ob::reset();
  }
};

/// One fwd+loss+bwd LM pass of either engine at p = 4 (q = 2 for Optimus).
oc::Cluster::Report run_lm_step(opm::Scheme scheme, const om::TransformerConfig& cfg) {
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 3);
  const auto batch = workload.next();
  return oc::run_cluster(4, [&](oc::Context& ctx) {
    if (scheme == opm::Scheme::kMegatron) {
      optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
      engine.forward(batch.tokens);
      (void)engine.lm_loss(batch.labels);
      engine.backward_lm();
    } else {
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> engine(cfg, mesh);
      engine.forward(batch.tokens);
      (void)engine.lm_loss(batch.labels);
      engine.backward_lm();
    }
  });
}

}  // namespace

// ---------------------------------------------------------------------------
// Measured vs analytic: Table 1 as a runtime-checked oracle
// ---------------------------------------------------------------------------

TEST(MeasuredVsAnalytic, OptimusCollectivesMatchClosedFormExactly) {
  const auto cfg = engine_config();
  const auto report = run_lm_step(opm::Scheme::kOptimus, cfg);
  const auto v =
      opm::validate_lm_step_comm(opm::Scheme::kOptimus, to_workload(cfg), 4,
                                 report.ranks[0].stats);
  ASSERT_EQ(v.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(v.rows[0].measured, v.rows[0].predicted);
  EXPECT_TRUE(v.ok(1e-12));
  // Every rank moves the same volume; the new byte counters are elems × 4
  // (f32 payloads throughout).
  for (const auto& r : report.ranks) {
    EXPECT_EQ(r.stats.broadcast.bytes, r.stats.broadcast.elems * 4);
    EXPECT_EQ(r.stats.reduce.bytes, r.stats.reduce.elems * 4);
    EXPECT_EQ(r.stats.broadcast.weighted, report.ranks[0].stats.broadcast.weighted);
  }
}

TEST(MeasuredVsAnalytic, MegatronCollectivesMatchClosedFormExactly) {
  const auto cfg = engine_config();
  const auto report = run_lm_step(opm::Scheme::kMegatron, cfg);
  const auto v =
      opm::validate_lm_step_comm(opm::Scheme::kMegatron, to_workload(cfg), 4,
                                 report.ranks[0].stats);
  ASSERT_EQ(v.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(v.rows[0].measured, v.rows[0].predicted);
  EXPECT_TRUE(v.ok(1e-12));
  for (const auto& r : report.ranks) {
    EXPECT_EQ(r.stats.allreduce.bytes, r.stats.allreduce.elems * 4);
  }
}

// ---------------------------------------------------------------------------
// Span trees
// ---------------------------------------------------------------------------

TEST(Spans, DeviceTracksNestProperlyAndExportValidates) {
  TraceGuard guard;
  ob::set_enabled(true);
  const auto cfg = engine_config();
  (void)run_lm_step(opm::Scheme::kOptimus, cfg);

  const auto spans = ob::snapshot();
  ASSERT_FALSE(spans.empty());
  // One track per simulated device: all four ranks recorded spans.
  bool seen_rank[4] = {false, false, false, false};
  for (const auto& s : spans) {
    if (s.rank >= 0 && s.rank < 4) seen_rank[s.rank] = true;
    EXPECT_GE(s.sim_end, s.sim_begin);
    EXPECT_GE(s.wall_end_ns, s.wall_begin_ns);
  }
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(seen_rank[r]) << "no spans on device " << r;

  // The exported document passes the structural validator: monotone
  // per-track timestamps, children inside parents, no overlapping siblings.
  const ob::TraceCheck check = ob::validate_chrome_trace(ob::chrome_trace_json());
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_GT(check.events, 0);
  EXPECT_GE(check.tracks, 4);
}

TEST(Spans, CollectiveSpansCarryAlignWaitVsTransferSplit) {
  TraceGuard guard;
  ob::set_enabled(true);
  const auto cfg = engine_config();
  (void)run_lm_step(opm::Scheme::kOptimus, cfg);

  int comm_spans = 0, labelled = 0;
  for (const auto& s : ob::snapshot()) {
    if (s.cat != "comm" || s.name == "send" || s.name == "recv") continue;
    ++comm_spans;
    double wait = -1, transfer = -1;
    bool has_bytes = false, has_g = false;
    for (const auto& [key, value] : s.args) {
      if (key == "wait_s") wait = value.as_number();
      if (key == "transfer_s") transfer = value.as_number();
      if (key == "bytes") has_bytes = true;
      if (key == "g") has_g = true;
      if (key == "comm") {
        const std::string& label = value.as_string();
        if (label == "mesh_row" || label == "mesh_col" || label == "world") ++labelled;
      }
    }
    EXPECT_TRUE(has_bytes && has_g) << s.name << " span missing bytes/g args";
    EXPECT_GE(wait, 0.0) << s.name << " align-wait must be non-negative";
    EXPECT_GE(transfer, 0.0);
    if (s.name == "ibroadcast" || s.name == "ireduce") {
      // Async issue: the clock does not advance — the scheduled transfer is
      // carried in args and elapses at the matching .wait span.
      EXPECT_NEAR(s.sim_dur(), 0.0, 1e-12) << s.name << " issue must be instant";
      continue;
    }
    // Blocking collectives cover wait + transfer; async .wait spans cover
    // exactly the un-hidden idle (their transfer_s is 0).
    EXPECT_NEAR(s.sim_dur(), wait + transfer, 1e-12 + 1e-9 * s.sim_dur());
  }
  EXPECT_GT(comm_spans, 0);
  EXPECT_GT(labelled, 0) << "mesh/world communicator labels missing";
}

TEST(Spans, GemmSimDurationEqualsModelledComputeTime) {
  // Dual-clock check: a GEMM span's simulated duration must equal the cost
  // model's compute_time(m·n·k), even though the SimClock itself only drains
  // at the next collective (the tracer extends it by pending mults).
  TraceGuard guard;
  ob::set_enabled(true);
  const auto cfg = engine_config();
  (void)run_lm_step(opm::Scheme::kOptimus, cfg);

  const double flop_rate = oc::MachineParams{}.flop_rate;
  int checked = 0;
  for (const auto& s : ob::snapshot()) {
    if (s.cat != "kernel" || s.name != "gemm" || s.rank < 0) continue;
    double m = 0, n = 0, k = 0;
    for (const auto& [key, value] : s.args) {
      if (key == "m") m = value.as_number();
      if (key == "n") n = value.as_number();
      if (key == "k") k = value.as_number();
    }
    ASSERT_GT(m * n * k, 0.0);
    const double expected = m * n * k / flop_rate;
    EXPECT_NEAR(s.sim_dur(), expected, 1e-12 + 1e-9 * expected);
    ++checked;
  }
  EXPECT_GT(checked, 0) << "no device GEMM spans recorded";
}

TEST(Spans, DisabledPathRecordsNothing) {
  TraceGuard guard;
  ASSERT_FALSE(ob::enabled());
  {
    ob::Span span("test", "should_not_record");
    span.arg("ignored", 1);
    EXPECT_FALSE(span.armed());
  }
  EXPECT_TRUE(ob::snapshot().empty());
}

// ---------------------------------------------------------------------------
// Numerics: tracing must not change what is computed
// ---------------------------------------------------------------------------

TEST(Numerics, LossTraceByteIdenticalWithTracingOnVsOff) {
  TraceGuard guard;
  const auto cfg = engine_config();
  const int steps = 4;
  auto train = [&]() {
    ort::PatternLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 4, 11);
    std::vector<ort::LmBatch> batches;
    for (int i = 0; i < steps; ++i) batches.push_back(workload.next());
    std::vector<double> losses;
    oc::run_cluster(4, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> engine(cfg, mesh);
      ort::Adam<float> opt;
      ort::ConstantLr schedule(1e-3);
      int i = 0;
      auto next_batch = [&]() { return batches[i++]; };
      auto trace = ort::train_lm(engine, opt, schedule, next_batch, steps);
      if (ctx.rank == 0) losses = trace;
    });
    return losses;
  };

  ob::set_enabled(false);
  const auto plain = train();
  ob::set_enabled(true);
  const auto traced = train();
  ASSERT_EQ(plain.size(), traced.size());
  EXPECT_EQ(0, std::memcmp(plain.data(), traced.data(), plain.size() * sizeof(double)));
  EXPECT_FALSE(ob::snapshot().empty());  // the traced run really recorded
}

// ---------------------------------------------------------------------------
// Validator rejects malformed traces
// ---------------------------------------------------------------------------

TEST(Validator, RejectsOverlappingSiblings) {
  const auto doc = ob::Json::parse(R"({"traceEvents": [
    {"name": "a", "cat": "t", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 10},
    {"name": "b", "cat": "t", "ph": "X", "pid": 0, "tid": 0, "ts": 5, "dur": 10}
  ]})");
  const auto check = ob::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("overlap"), std::string::npos) << check.error;
}

TEST(Validator, RejectsNonMonotoneTimestamps) {
  const auto doc = ob::Json::parse(R"({"traceEvents": [
    {"name": "a", "cat": "t", "ph": "X", "pid": 0, "tid": 0, "ts": 10, "dur": 1},
    {"name": "b", "cat": "t", "ph": "X", "pid": 0, "tid": 0, "ts": 3, "dur": 1}
  ]})");
  EXPECT_FALSE(ob::validate_chrome_trace(doc).ok);
}

TEST(Validator, AcceptsNestedAndTouchingSpans) {
  const auto doc = ob::Json::parse(R"({"traceEvents": [
    {"name": "parent", "cat": "t", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 10},
    {"name": "child1", "cat": "t", "ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 4},
    {"name": "child2", "cat": "t", "ph": "X", "pid": 0, "tid": 0, "ts": 4, "dur": 6},
    {"name": "next", "cat": "t", "ph": "X", "pid": 0, "tid": 0, "ts": 10, "dur": 2}
  ]})");
  const auto check = ob::validate_chrome_trace(doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.events, 4);
  EXPECT_EQ(check.tracks, 1);
}

// ---------------------------------------------------------------------------
// Request lanes
// ---------------------------------------------------------------------------

TEST(Lanes, RecordLaneSpanExportsOnRequestPidWithLaneAsTid) {
  TraceGuard guard;
  ob::set_enabled(true);
  // One request lifecycle with a queue-wait and a decode-step child, plus a
  // second lane — emitted out of lane order to exercise grouping.
  ob::record_lane_span("request", "lifecycle", /*lane=*/7, /*depth=*/0, 0.0, 1.0);
  ob::record_lane_span("request", "lifecycle", /*lane=*/3, /*depth=*/0, 0.5, 2.0);
  ob::record_lane_span("request", "queue_wait", 7, 1, 0.0, 0.2);
  ob::record_lane_span("request", "decode_step", 7, 1, 0.2, 0.9);
  ob::record_lane_span("request", "decode_step", 3, 1, 0.6, 1.5);

  const ob::Json doc = ob::chrome_trace_json();
  int request_events = 0;
  bool lane3 = false, lane7 = false;
  for (const auto& e : doc.get("traceEvents").items()) {
    if (!e.get("ph").is_string() || e.get("ph").as_string() != "X") continue;
    if (static_cast<int>(e.get("pid").as_number()) != 2) continue;  // requests pid
    ++request_events;
    const int tid = static_cast<int>(e.get("tid").as_number());
    EXPECT_TRUE(tid == 3 || tid == 7) << "lane span on unexpected tid " << tid;
    lane3 |= tid == 3;
    lane7 |= tid == 7;
    EXPECT_EQ(e.get("cat").as_string(), "request");
  }
  EXPECT_EQ(request_events, 5);
  EXPECT_TRUE(lane3 && lane7);

  const ob::TraceCheck check = ob::validate_chrome_trace(doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.request_lanes, 2);
}

TEST(Lanes, DisabledPathRecordsNothing) {
  TraceGuard guard;
  ASSERT_FALSE(ob::enabled());
  ob::record_lane_span("request", "lifecycle", 1, 0, 0.0, 1.0);
  EXPECT_TRUE(ob::snapshot().empty());
}

TEST(Validator, RejectsOrphanRequestSpans) {
  // A decode step on a request lane with no enclosing lifecycle span.
  const auto doc = ob::Json::parse(R"({"traceEvents": [
    {"name": "decode_step", "cat": "request", "ph": "X", "pid": 2, "tid": 5, "ts": 0, "dur": 4}
  ]})");
  const auto check = ob::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("orphan"), std::string::npos) << check.error;
}

TEST(Validator, RejectsNestedLifecycleSpans) {
  const auto doc = ob::Json::parse(R"({"traceEvents": [
    {"name": "lifecycle", "cat": "request", "ph": "X", "pid": 2, "tid": 5, "ts": 0, "dur": 10},
    {"name": "lifecycle", "cat": "request", "ph": "X", "pid": 2, "tid": 5, "ts": 2, "dur": 3}
  ]})");
  const auto check = ob::validate_chrome_trace(doc);
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.error.find("lifecycle"), std::string::npos) << check.error;
}

TEST(Validator, AcceptsDecodeStepsInsideLifecycle) {
  const auto doc = ob::Json::parse(R"({"traceEvents": [
    {"name": "lifecycle", "cat": "request", "ph": "X", "pid": 2, "tid": 5, "ts": 0, "dur": 10},
    {"name": "queue_wait", "cat": "request", "ph": "X", "pid": 2, "tid": 5, "ts": 0, "dur": 2},
    {"name": "decode_step", "cat": "request", "ph": "X", "pid": 2, "tid": 5, "ts": 2, "dur": 3}
  ]})");
  const auto check = ob::validate_chrome_trace(doc);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.request_lanes, 1);
}

// ---------------------------------------------------------------------------
// Metrics export
// ---------------------------------------------------------------------------

TEST(Metrics, JsonCarriesPerRankCommBytesAndPoolStats) {
  TraceGuard guard;
  const auto cfg = engine_config();
  const auto report = run_lm_step(opm::Scheme::kOptimus, cfg);
  const ob::Json doc = oc::metrics_json(report);

  EXPECT_EQ(doc.get("world_size").as_number(), 4.0);
  ASSERT_EQ(doc.get("ranks").items().size(), 4u);
  const ob::Json& rank0 = doc.get("ranks").items()[0];
  EXPECT_GT(rank0.get("mults").as_number(), 0.0);
  EXPECT_GT(rank0.get("peak_bytes").as_number(), 0.0);
  const ob::Json& bc = rank0.get("comm").get("broadcast");
  EXPECT_EQ(bc.get("bytes").as_number(),
            static_cast<double>(report.ranks[0].stats.broadcast.bytes));
  EXPECT_TRUE(doc.has("totals"));
  EXPECT_TRUE(doc.get("totals").has("comm_by_kind"));
  EXPECT_TRUE(doc.has("pool"));
  // Round-trips through the parser.
  const ob::Json reparsed = ob::Json::parse(doc.dump(2));
  EXPECT_EQ(reparsed.get("world_size").as_number(), 4.0);
  EXPECT_EQ(reparsed.get("ranks").items().size(), 4u);
}

// ---------------------------------------------------------------------------
// Pool counters
// ---------------------------------------------------------------------------

TEST(PoolStats, CountsRegionsAndChunksAndResets) {
  ok::reset_pool_stats();
  ok::set_threads(4);
  std::atomic<long long> sum{0};
  ok::ThreadPool::global().parallel_for(1 << 14, 64, [&](ok::index_t b, ok::index_t e) {
    sum.fetch_add(e - b, std::memory_order_relaxed);
  });
  ok::set_threads(0);
  EXPECT_EQ(sum.load(), 1 << 14);
  const ok::PoolStats ps = ok::pool_stats();
  EXPECT_EQ(ps.regions + ps.inline_regions, 1u);
  if (ps.regions == 1) {
    EXPECT_EQ(ps.chunks, static_cast<std::uint64_t>((1 << 14) / 64));
    EXPECT_GE(ps.worker_share(), 0.0);
    EXPECT_LE(ps.worker_share(), 1.0);
  }
  ok::reset_pool_stats();
  const ok::PoolStats zero = ok::pool_stats();
  EXPECT_EQ(zero.regions + zero.inline_regions + zero.chunks, 0u);
}

// ---------------------------------------------------------------------------
// Rank-tagged logging + track installation
// ---------------------------------------------------------------------------

TEST(LogRank, ScopedTrackInstallsRankAndSimClockAndRestores) {
  EXPECT_EQ(optimus::util::thread_log_rank(), -1);
  EXPECT_EQ(ob::current_rank(), ob::kHostRank);
  {
    ob::ScopedTrack track(3, [] { return 1.5; });
    EXPECT_EQ(optimus::util::thread_log_rank(), 3);
    EXPECT_EQ(ob::current_rank(), 3);
    EXPECT_DOUBLE_EQ(ob::sim_now(), 1.5);
    {
      ob::ScopedTrack inner(7, [] { return 2.5; });
      EXPECT_EQ(optimus::util::thread_log_rank(), 7);
      EXPECT_DOUBLE_EQ(ob::sim_now(), 2.5);
    }
    EXPECT_EQ(optimus::util::thread_log_rank(), 3);
    EXPECT_DOUBLE_EQ(ob::sim_now(), 1.5);
  }
  EXPECT_EQ(optimus::util::thread_log_rank(), -1);
  EXPECT_EQ(ob::current_rank(), ob::kHostRank);
}

// ---------------------------------------------------------------------------
// JSON layer
// ---------------------------------------------------------------------------

TEST(Json, ParseDumpRoundTrip) {
  const char* text =
      R"({"a": 1, "b": [true, false, null, 2.5, "x\"y\n"], "c": {"nested": [1, 2, 3]}})";
  const ob::Json doc = ob::Json::parse(text);
  EXPECT_EQ(doc.get("a").as_number(), 1.0);
  EXPECT_EQ(doc.get("b").items().size(), 5u);
  EXPECT_EQ(doc.get("b").items()[4].as_string(), "x\"y\n");
  const ob::Json again = ob::Json::parse(doc.dump());
  EXPECT_EQ(again.dump(), doc.dump());
  EXPECT_THROW(ob::Json::parse("{\"unterminated\": "), std::exception);
  EXPECT_THROW(ob::Json::parse("[1, 2] trailing"), std::exception);
}
