// The differential fuzz harness's own invariants, plus a small smoke sweep.
//
// The heavyweight sweeps live in tools/fuzz_equivalence (wired into
// scripts/check.sh); these tests pin the harness machinery itself: config
// strings round-trip, sampled configs are always valid, shrink candidates
// are valid and strictly smaller, ULP comparison semantics, and a seeded
// 8-config differential smoke run (serial vs 2D vs 1D, checkpoint
// round-trips, finite-difference oracle check).

#include <gtest/gtest.h>

#include <random>

#include "test_helpers.hpp"
#include "testing/equivalence.hpp"
#include "testing/fuzz_config.hpp"
#include "testing/ulp.hpp"
#include "testing/watchdog.hpp"
#include "util/check.hpp"

namespace ots = optimus::testing;

TEST(Ulp, DistanceAndToleranceSemantics) {
  EXPECT_EQ(ots::ulp_distance(1.0, 1.0), 0u);
  EXPECT_EQ(ots::ulp_distance(1.0, std::nextafter(1.0, 2.0)), 1u);
  EXPECT_EQ(ots::ulp_distance(0.0, -0.0), 1u);  // adjacent keys across zero
  EXPECT_EQ(ots::ulp_distance(1.0f, std::nextafterf(std::nextafterf(1.0f, 2.0f), 2.0f)), 2u);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(ots::ulp_distance(nan, 1.0), std::numeric_limits<std::uint64_t>::max());

  ots::Tolerance tol{4, 1e-9};
  EXPECT_TRUE(tol.within(1.0, std::nextafter(1.0, 2.0)));
  EXPECT_TRUE(tol.within(1e-10, -1e-10));  // huge ULP distance, under atol
  EXPECT_FALSE(tol.within(1.0, 1.0 + 1e-6));
}

TEST(FuzzConfig, StringRoundTripIsIdentity) {
  const std::uint64_t seed = ots::test_seed(17);
  OPTIMUS_SEED_TRACE(seed);
  std::mt19937 gen(static_cast<std::mt19937::result_type>(seed));
  for (int n = 0; n < 50; ++n) {
    const ots::FuzzConfig fc = ots::FuzzConfig::sample(gen);
    EXPECT_EQ(ots::FuzzConfig::parse(fc.to_string()).to_string(), fc.to_string());
  }
}

TEST(FuzzConfig, SampledConfigsAreAlwaysValid) {
  const std::uint64_t seed = ots::test_seed(18);
  OPTIMUS_SEED_TRACE(seed);
  std::mt19937 gen(static_cast<std::mt19937::result_type>(seed));
  for (int n = 0; n < 200; ++n) {
    EXPECT_NO_THROW(ots::FuzzConfig::sample(gen).validate());
  }
}

TEST(FuzzConfig, ParseRejectsUnknownKeysAndBadShapes) {
  EXPECT_THROW(ots::FuzzConfig::parse("q=2,bogus=1"), optimus::util::CheckError);
  // heads not divisible by q.
  EXPECT_THROW(ots::FuzzConfig::parse("q=2,heads=3,hd=2,b=2,v=12"), optimus::util::CheckError);
  // Pooled buffers without checkpointing violate the engine precondition.
  EXPECT_THROW(ots::FuzzConfig::parse("q=1,ckpt2d=0,buf=pool"), optimus::util::CheckError);
  // Depth constraints: hidden (= heads·hd) must split q·d ways.
  EXPECT_THROW(ots::FuzzConfig::parse("q=2,d=2,heads=2,hd=3,b=2,v=12"),
               optimus::util::CheckError);
  EXPECT_THROW(ots::FuzzConfig::parse("q=1,d=5"), optimus::util::CheckError);
}

TEST(FuzzConfig, DepthKeyRoundTripsAndDefaultsToOne) {
  // Repro strings from the pre-depth corpus carry no d= key and must keep
  // parsing as 2D meshes; explicit depth survives the round trip.
  const ots::FuzzConfig legacy = ots::FuzzConfig::parse("q=2,heads=2,hd=2,b=2,s=2,v=12");
  EXPECT_EQ(legacy.depth, 1);
  const ots::FuzzConfig deep = ots::FuzzConfig::parse("q=2,d=2,heads=2,hd=2,b=2,s=2,v=12");
  EXPECT_EQ(deep.depth, 2);
  EXPECT_EQ(ots::FuzzConfig::parse(deep.to_string()).depth, 2);
  EXPECT_NE(deep.to_string().find("d=2"), std::string::npos);
}

TEST(FuzzConfig, ShrinkCandidatesAreValidAndSmaller) {
  const std::uint64_t seed = ots::test_seed(19);
  OPTIMUS_SEED_TRACE(seed);
  std::mt19937 gen(static_cast<std::mt19937::result_type>(seed));
  for (int n = 0; n < 30; ++n) {
    const ots::FuzzConfig fc = ots::FuzzConfig::sample(gen);
    // Every shrink candidate strictly decreases this measure: size fields
    // dominate, checkpoint flags outweigh the buffer knob (turning ckpt off
    // forces pooled → heap, which alone would count +1), heap counts above
    // pool (pooled is the canonical default).
    const auto cost = [](const ots::FuzzConfig& c) {
      const std::int64_t size = c.layers + c.q + c.depth + c.mp + c.batch + c.seq + c.heads +
                                c.head_dim + c.mlp_ratio + c.vocab + c.threads;
      return 100 * size + 3 * ((c.ckpt_2d ? 1 : 0) + (c.ckpt_1d ? 1 : 0)) +
             (c.pooled_buffers ? 0 : 1) + (c.pipeline_2d ? 0 : 1);
    };
    for (const ots::FuzzConfig& cand : fc.shrink_candidates()) {
      EXPECT_NO_THROW(cand.validate()) << cand.to_string();
      EXPECT_LT(cost(cand), cost(fc)) << "shrink did not reduce: " << cand.to_string();
    }
  }
}

TEST(FuzzSmoke, EightSampledConfigsMatchAcrossEngines) {
  ots::Watchdog wd("fuzz smoke test", std::chrono::seconds(300));
  const std::uint64_t seed = ots::test_seed(4242);
  OPTIMUS_SEED_TRACE(seed);
  std::mt19937 gen(static_cast<std::mt19937::result_type>(seed));
  ots::EquivalenceOptions opts;
  opts.gradcheck_coords = 2;
  for (int n = 0; n < 8; ++n) {
    const ots::FuzzConfig fc = ots::FuzzConfig::sample(gen);
    const ots::EquivalenceResult res = ots::run_equivalence(fc, opts);
    EXPECT_TRUE(res.pass()) << ots::summarize(res);
  }
}
