// Tests for the Mixture-of-Experts extension (paper §6 future work):
// all_to_all collective, the serial SwitchFfn (finite-difference gradient
// checks through routing + aux loss), and the expert-parallel layer's
// equivalence with the serial oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "comm/cluster.hpp"
#include "model/moe.hpp"
#include "runtime/optimizer.hpp"
#include "test_helpers.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ot::DTensor;
using ot::Shape;

// ---------------------------------------------------------------------------
// all_to_all
// ---------------------------------------------------------------------------

namespace {

class AllToAllSweep : public ::testing::TestWithParam<int> {};

}  // namespace

TEST_P(AllToAllSweep, DeliversPersonalisedChunks) {
  const int p = GetParam();
  oc::run_cluster(p, [&](oc::Context& ctx) {
    const int n = 3;
    std::vector<double> send(static_cast<std::size_t>(n * p));
    for (int dst = 0; dst < p; ++dst) {
      for (int i = 0; i < n; ++i) {
        send[dst * n + i] = 100.0 * ctx.rank + 10.0 * dst + i;
      }
    }
    std::vector<double> out(static_cast<std::size_t>(n * p), -1);
    ctx.world.all_to_all(send.data(), n, out.data());
    for (int src = 0; src < p; ++src) {
      for (int i = 0; i < n; ++i) {
        // Chunk from `src` addressed to me.
        ASSERT_DOUBLE_EQ(out[src * n + i], 100.0 * src + 10.0 * ctx.rank + i);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, AllToAllSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(AllToAll, RecordsStatsAndAdvancesClock) {
  auto report = oc::run_cluster(4, [](oc::Context& ctx) {
    std::vector<float> send(32, static_cast<float>(ctx.rank));
    std::vector<float> out(32);
    ctx.world.all_to_all(send.data(), 8, out.data());
  });
  const auto& st = report.ranks[0].stats;
  EXPECT_EQ(st.alltoall.calls, 1u);
  EXPECT_EQ(st.alltoall.elems, 32u);
  EXPECT_DOUBLE_EQ(st.alltoall.weighted, 8.0 * 3);  // n·(g−1)
  EXPECT_GT(report.ranks[0].sim_time, 0.0);
}

TEST(AllToAll, ComposesWithSplit) {
  // all_to_all within each split half stays inside the half.
  oc::run_cluster(4, [](oc::Context& ctx) {
    auto half = ctx.world.split(ctx.rank / 2, ctx.rank);
    std::vector<double> send{static_cast<double>(ctx.rank), static_cast<double>(ctx.rank)};
    std::vector<double> out(2, -1);
    half.all_to_all(send.data(), 1, out.data());
    const int base = (ctx.rank / 2) * 2;
    ASSERT_DOUBLE_EQ(out[0], base);
    ASSERT_DOUBLE_EQ(out[1], base + 1);
  });
}

// ---------------------------------------------------------------------------
// Serial SwitchFfn
// ---------------------------------------------------------------------------

namespace {

om::MoeConfig moe_config() {
  om::MoeConfig cfg;
  cfg.hidden = 8;
  cfg.ffn_hidden = 12;
  cfg.num_experts = 4;
  cfg.aux_loss_coef = 0.05;
  cfg.seed = 77;
  return cfg;
}

}  // namespace

TEST(SwitchFfn, RoutesEveryTokenToExactlyOneExpert) {
  const auto cfg = moe_config();
  om::SwitchFfn<double> moe(cfg);
  optimus::util::Rng rng(1);
  DTensor x = optimus::testing::random_dtensor(Shape{16, cfg.hidden}, rng);
  (void)moe.forward(x);
  const auto counts = moe.expert_counts();
  ot::index_t total = 0;
  for (auto c : counts) total += c;
  EXPECT_EQ(total, 16);
  EXPECT_EQ(moe.assignments().size(), 16u);
}

TEST(SwitchFfn, OutputScalesWithGateProbability) {
  // Doubling every gate logit margin keeps routing but changes gate values —
  // sanity that y = g·F: zeroing the gate weight makes all gates 1/E.
  auto cfg = moe_config();
  om::SwitchFfn<double> moe(cfg);
  moe.gate_w().zero();
  optimus::util::Rng rng(2);
  DTensor x = optimus::testing::random_dtensor(Shape{4, cfg.hidden}, rng);
  DTensor y = moe.forward(x);
  // With uniform gates every token scales by exactly 1/E.
  for (ot::index_t t = 0; t < 4; ++t) {
    // Verify against manually applying expert 0-of-argmax... simpler: gate
    // value must be 1/E for every token.
    // (routing then picks expert 0, the argmax tie-break.)
    EXPECT_EQ(moe.assignments()[t], 0);
  }
  (void)y;
}

TEST(SwitchFfn, AuxLossIsMinimalWhenBalanced) {
  // Perfectly balanced routing gives aux = α (the Switch lower bound);
  // collapsed routing gives ≈ α·E.
  auto cfg = moe_config();
  cfg.num_experts = 2;
  om::SwitchFfn<double> moe(cfg);
  // Forward with inputs engineered to split between experts evenly.
  optimus::util::Rng rng(3);
  DTensor x = optimus::testing::random_dtensor(Shape{64, cfg.hidden}, rng, 2.0);
  (void)moe.forward(x);
  const auto counts = moe.expert_counts();
  const double balance =
      static_cast<double>(std::max(counts[0], counts[1])) / 64.0;
  if (balance < 0.6) {  // roughly balanced run
    EXPECT_LT(moe.aux_loss(), cfg.aux_loss_coef * 1.2);
  }
  EXPECT_GE(moe.aux_loss(), cfg.aux_loss_coef * 0.99);  // ≥ α always
}

TEST(SwitchFfn, GradientsMatchFiniteDifference) {
  // End-to-end FD check through routing, expert MLPs, gate softmax and the
  // aux loss. Routing is piecewise-constant; with random inputs the argmax
  // margins are >> eps, so the FD is valid.
  const auto cfg = moe_config();
  om::SwitchFfn<double> moe(cfg);
  optimus::util::Rng rng(4);
  DTensor x = optimus::testing::random_dtensor(Shape{6, cfg.hidden}, rng);
  DTensor G = optimus::testing::random_dtensor(Shape{6, cfg.hidden}, rng);

  DTensor y = moe.forward(x);
  moe.zero_grads();
  DTensor dx = moe.backward(G);

  auto loss = [&] {
    om::SwitchFfn<double> fresh(cfg);
    // Copy the (possibly perturbed) parameters from `moe`.
    auto src = moe.parameters();
    auto dst = fresh.parameters();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i]->copy_from(*src[i]);
    DTensor yy = fresh.forward(x);
    double acc = static_cast<double>(fresh.aux_loss());
    for (ot::index_t i = 0; i < yy.numel(); ++i) acc += yy[i] * G[i];
    return acc;
  };
  // Input gradient.
  {
    auto loss_x = [&] {
      om::SwitchFfn<double> fresh(cfg);
      auto src = moe.parameters();
      auto dst = fresh.parameters();
      for (std::size_t i = 0; i < src.size(); ++i) dst[i]->copy_from(*src[i]);
      DTensor yy = fresh.forward(x);
      double acc = static_cast<double>(fresh.aux_loss());
      for (ot::index_t i = 0; i < yy.numel(); ++i) acc += yy[i] * G[i];
      return acc;
    };
    optimus::testing::check_gradient(x, loss_x, dx, 1e-6, 1e-5);
  }
  // Every parameter gradient.
  auto params = moe.parameters();
  auto grads = moe.gradients();
  for (std::size_t i = 0; i < params.size(); ++i) {
    SCOPED_TRACE("moe param " + std::to_string(i));
    optimus::testing::check_gradient(*params[i], loss, *grads[i], 1e-6, 1e-5);
  }
}

TEST(SwitchFfn, LearnsTeacherMixture) {
  // Student fits a frozen random teacher with a different seed: MSE must drop
  // far below the initial value.
  auto cfg = moe_config();
  cfg.hidden = 8;
  cfg.num_experts = 2;
  om::SwitchFfn<float> teacher(cfg);
  auto student_cfg = cfg;
  student_cfg.seed = cfg.seed + 1;
  om::SwitchFfn<float> student(student_cfg);
  optimus::runtime::Adam<float> opt;
  optimus::util::Rng rng(5);

  double first = 0, last = 0;
  for (int step = 0; step < 150; ++step) {
    ot::Tensor x(Shape{16, cfg.hidden});
    for (ot::index_t i = 0; i < x.numel(); ++i) {
      x[i] = static_cast<float>(rng.uniform(-1, 1));
    }
    ot::Tensor target = teacher.forward(x);
    ot::Tensor y = student.forward(x);
    ot::Tensor dy(y.shape());
    double mse = 0;
    for (ot::index_t i = 0; i < y.numel(); ++i) {
      const float diff = y[i] - target[i];
      mse += diff * diff;
      dy[i] = 2.0f * diff / static_cast<float>(y.numel());
    }
    mse /= static_cast<double>(y.numel());
    if (step == 0) first = mse;
    last = mse;
    student.zero_grads();
    (void)student.backward(dy);
    opt.step(student.parameters(), student.gradients(), 3e-3);
  }
  EXPECT_LT(last, 0.25 * first);
}

// ---------------------------------------------------------------------------
// Expert-parallel SwitchFfn
// ---------------------------------------------------------------------------

TEST(ExpertParallelMoe, MatchesSerialWithAmpleCapacity) {
  auto cfg = moe_config();
  cfg.capacity_factor = 8.0;  // nothing drops
  const int p = 2;
  const ot::index_t tokens = 12;  // per rank

  // Serial oracle over the concatenated shards.
  optimus::util::Rng rng(6);
  DTensor x_full = optimus::testing::random_dtensor(Shape{tokens * p, cfg.hidden}, rng);
  DTensor g_full = optimus::testing::random_dtensor(Shape{tokens * p, cfg.hidden}, rng);
  om::SwitchFfn<double> oracle(cfg);
  DTensor y_ref = oracle.forward(x_full);
  oracle.zero_grads();
  DTensor dx_ref = oracle.backward(g_full);
  const double aux_ref = oracle.aux_loss();

  std::mutex mu;
  oc::run_cluster(p, [&](oc::Context& ctx) {
    om::ExpertParallelSwitchFfn<double> moe(cfg, ctx.world);
    DTensor x = x_full.row_range(ctx.rank * tokens, (ctx.rank + 1) * tokens).clone();
    DTensor g = g_full.row_range(ctx.rank * tokens, (ctx.rank + 1) * tokens).clone();
    DTensor y = moe.forward(x);
    ASSERT_EQ(moe.dropped(), 0);
    ASSERT_NEAR(moe.aux_loss(), aux_ref, 1e-12);
    moe.zero_grads();
    DTensor dx = moe.backward(g);

    std::lock_guard<std::mutex> lock(mu);
    DTensor y_shard = y_ref.row_range(ctx.rank * tokens, (ctx.rank + 1) * tokens).clone();
    ASSERT_LT(ops::max_abs_diff(y, y_shard), 1e-12);
    DTensor dx_shard = dx_ref.row_range(ctx.rank * tokens, (ctx.rank + 1) * tokens).clone();
    ASSERT_LT(ops::max_abs_diff(dx, dx_shard), 1e-12);
    // This rank's experts' gradients equal the oracle's for those experts.
    const ot::index_t e_loc = moe.experts_local();
    for (ot::index_t le = 0; le < e_loc; ++le) {
      const ot::index_t e = ctx.rank * e_loc + le;
      ASSERT_LT(ops::max_abs_diff(moe.expert_w1_grad(le), oracle.expert_w1_grad(e)), 1e-12)
          << "expert " << e;
    }
    // Replicated gate gradient equals the full-batch gate gradient.
    ASSERT_LT(ops::max_abs_diff(moe.gate_w_grad(), oracle.gate_w_grad()), 1e-12);
  });
}

TEST(ExpertParallelMoe, TightCapacityDropsDeterministically) {
  auto cfg = moe_config();
  cfg.capacity_factor = 0.5;  // guaranteed drops for any skewed routing
  const int p = 2;
  oc::run_cluster(p, [&](oc::Context& ctx) {
    om::ExpertParallelSwitchFfn<double> moe(cfg, ctx.world);
    optimus::util::Rng rng(700 + ctx.rank);
    DTensor x(Shape{16, cfg.hidden});
    for (ot::index_t i = 0; i < x.numel(); ++i) x[i] = rng.uniform(-1, 1);
    DTensor y = moe.forward(x);
    // Dropped tokens produce exactly-zero rows; kept tokens generally not.
    ot::index_t zero_rows = 0;
    for (ot::index_t t = 0; t < 16; ++t) {
      double norm = 0;
      for (ot::index_t j = 0; j < cfg.hidden; ++j) norm += std::abs(y.at(t, j));
      if (norm == 0.0) ++zero_rows;
    }
    ASSERT_EQ(zero_rows, moe.dropped());
    ASSERT_GT(moe.dropped(), 0);
    // Backward must run cleanly with drops: dropped tokens get dx only from
    // the gate path.
    DTensor g = DTensor::full(y.shape(), 1.0);
    moe.zero_grads();
    DTensor dx = moe.backward(g);
    ASSERT_EQ(dx.numel(), x.numel());
  });
}

TEST(ExpertParallelMoe, SingleRankDegeneratesToSerial) {
  auto cfg = moe_config();
  cfg.capacity_factor = 8.0;
  optimus::util::Rng rng(8);
  DTensor x = optimus::testing::random_dtensor(Shape{10, cfg.hidden}, rng);
  om::SwitchFfn<double> oracle(cfg);
  DTensor y_ref = oracle.forward(x);
  oc::run_cluster(1, [&](oc::Context& ctx) {
    om::ExpertParallelSwitchFfn<double> moe(cfg, ctx.world);
    DTensor y = moe.forward(x);
    ASSERT_LT(ops::max_abs_diff(y, y_ref), 1e-14);
  });
}

TEST(ExpertParallelMoe, ExpertCountMustDivideRanks) {
  auto cfg = moe_config();
  cfg.num_experts = 3;
  EXPECT_THROW(oc::run_cluster(2,
                               [&](oc::Context& ctx) {
                                 om::ExpertParallelSwitchFfn<double> moe(cfg, ctx.world);
                                 (void)moe;
                               }),
               optimus::util::CheckError);
}

TEST(ExpertParallelMoe, TrainingStepReducesTeacherLoss) {
  auto cfg = moe_config();
  cfg.capacity_factor = 4.0;
  const int p = 2;
  oc::run_cluster(p, [&](oc::Context& ctx) {
    om::SwitchFfn<float> teacher(cfg);  // replicated teacher, full determinism
    auto student_cfg = cfg;
    student_cfg.seed = cfg.seed + 9;
    om::ExpertParallelSwitchFfn<float> student(student_cfg, ctx.world);
    optimus::runtime::Adam<float> opt;
    optimus::util::Rng rng(1000 + ctx.rank);
    // A fixed batch makes the SGD trajectory deterministic and monotone
    // enough to assert on (fresh batches at this tiny scale are noise-bound).
    ot::Tensor x(Shape{8, cfg.hidden});
    for (ot::index_t i = 0; i < x.numel(); ++i) {
      x[i] = static_cast<float>(rng.uniform(-2, 2));
    }
    ot::Tensor target = teacher.forward(x);
    double first = 0, last = 0;
    for (int step = 0; step < 200; ++step) {
      ot::Tensor y = student.forward(x);
      ot::Tensor dy(y.shape());
      double mse = 0;
      for (ot::index_t i = 0; i < y.numel(); ++i) {
        const float diff = y[i] - target[i];
        mse += diff * diff;
        dy[i] = 2.0f * diff / static_cast<float>(y.numel());
      }
      if (step == 0) first = mse;
      last = mse;
      student.zero_grads();
      (void)student.backward(dy);
      opt.step(student.parameters(), student.gradients(), 3e-3);
    }
    ASSERT_LT(last, 0.5 * first);
  });
}
