// Tests for src/util: check macros, RNG determinism and distribution,
// CLI parsing, table formatting.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace ou = optimus::util;

TEST(Check, PassingConditionDoesNothing) { OPT_CHECK(1 + 1 == 2, "never shown"); }

TEST(Check, FailingConditionThrowsWithMessage) {
  try {
    OPT_CHECK(false, "value was " << 42);
    FAIL() << "expected CheckError";
  } catch (const ou::CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("value was 42"), std::string::npos) << what;
    EXPECT_NE(what.find("util_test.cpp"), std::string::npos) << what;
  }
}

TEST(Check, MessagelessFormSupported) {
  EXPECT_THROW(OPT_CHECK(false), ou::CheckError);
}

TEST(Rng, DeterministicForSameSeed) {
  ou::Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  ou::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInRange) {
  ou::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversAllBuckets) {
  ou::Rng rng(11);
  std::array<int, 7> counts{};
  for (int i = 0; i < 7000; ++i) counts[rng.uniform_index(7)] += 1;
  for (int c : counts) EXPECT_GT(c, 700);  // each ~1000 expected
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  ou::Rng rng(5);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(CounterRng, PureFunctionOfCoordinates) {
  ou::CounterRng a(42), b(42);
  EXPECT_EQ(a.u64_at(3, 99), b.u64_at(3, 99));
  // Order of evaluation is irrelevant.
  const auto x = a.u64_at(0, 0);
  (void)a.u64_at(7, 7);
  EXPECT_EQ(a.u64_at(0, 0), x);
}

TEST(CounterRng, DistinctCoordinatesDistinctValues) {
  ou::CounterRng rng(9);
  // Collisions are possible in principle but astronomically unlikely in 1e4 draws.
  std::set<std::uint64_t> seen;
  for (int s = 0; s < 10; ++s) {
    for (int i = 0; i < 1000; ++i) seen.insert(rng.u64_at(s, i));
  }
  EXPECT_EQ(seen.size(), 10u * 1000u);
}

TEST(CounterRng, SymmetricRangeRespected) {
  ou::CounterRng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.symmetric_at(0, i, 0.25);
    EXPECT_GE(v, -0.25);
    EXPECT_LT(v, 0.25);
  }
}

TEST(CounterRng, NormalAtMomentsRoughlyStandard) {
  ou::CounterRng rng(3);
  const int n = 20000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal_at(0, i);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.06);
}

namespace {

ou::Cli make_cli(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return ou::Cli(static_cast<int>(ptrs.size()), ptrs.data());
}

}  // namespace

TEST(Cli, ParsesEqualsAndSpaceForms) {
  auto cli = make_cli({"prog", "--steps=12", "--lr", "0.5", "--name=abc"});
  EXPECT_EQ(cli.get_int("steps", 0), 12);
  EXPECT_DOUBLE_EQ(cli.get_double("lr", 0.0), 0.5);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
  cli.finish();
}

TEST(Cli, DefaultsWhenAbsent) {
  auto cli = make_cli({"prog"});
  EXPECT_EQ(cli.get_int("steps", 7), 7);
  EXPECT_EQ(cli.get_string("mode", "x"), "x");
  EXPECT_FALSE(cli.get_bool("verbose", false));
  cli.finish();
}

TEST(Cli, BareBooleanFlag) {
  auto cli = make_cli({"prog", "--verbose"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  cli.finish();
}

TEST(Cli, UnknownFlagRejectedByFinish) {
  auto cli = make_cli({"prog", "--oops=1"});
  EXPECT_THROW(cli.finish(), ou::CheckError);
}

TEST(Cli, NonFlagArgumentRejected) {
  EXPECT_THROW(make_cli({"prog", "positional"}), ou::CheckError);
}

TEST(Table, AlignsColumnsAndCountsRows) {
  ou::Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "10000"});
  const std::string s = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("10000"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  ou::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ou::CheckError);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(ou::Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(ou::Table::fmt(static_cast<long long>(42)), "42");
}

TEST(Logging, ParseLevelRoundTrip) {
  EXPECT_EQ(ou::parse_log_level("debug"), ou::LogLevel::Debug);
  EXPECT_EQ(ou::parse_log_level("warn"), ou::LogLevel::Warn);
  EXPECT_THROW(ou::parse_log_level("loud"), ou::CheckError);
}

TEST(Logging, LevelFilterIsSettable) {
  const auto prior = ou::log_level();
  ou::set_log_level(ou::LogLevel::Error);
  EXPECT_EQ(ou::log_level(), ou::LogLevel::Error);
  OPT_LOG(Debug) << "suppressed";
  ou::set_log_level(prior);
}
