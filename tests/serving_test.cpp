// Serving-path tests: KV-cached incremental decode and the continuous-batching
// scheduler.
//
// The load-bearing claims, each tested directly:
//   * decode ≡ prefill *bitwise* (0 ULPs) for every engine — serial, Optimus
//     2D at q ∈ {1,2,3}, Megatron 1D at p ∈ {1,2,3} — at shapes where both
//     paths take the same GEMM kernel dispatch (see the cutoff note below);
//   * eviction + replay is invisible: a request evicted mid-generation and
//     re-admitted produces the identical token sequence;
//   * a decode step's simulated cost equals the closed-form predictor exactly;
//   * injected latency faults never change served tokens; a poisoned
//     collective aborts loudly, naming the op, and the preserved request state
//     resumes on a fresh cluster to the identical completion.
//
// Shape note: kernel dispatch (ops.cpp) switches micro-kernels on m·n·k.
// Bitwise decode≡prefill additionally requires both paths to land on the
// same side of that cutoff, so these tests use tiny hidden sizes where every
// GEMM in both paths stays below it. Cross-dispatch shapes are covered by the
// ULP-budgeted fuzz stage in testing/equivalence.cpp instead.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "comm/cluster.hpp"
#include "comm/fabric.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "model/serial_model.hpp"
#include "perfmodel/validation.hpp"
#include "serving/serving.hpp"
#include "serving/traffic.hpp"
#include "summa/summa.hpp"
#include "test_helpers.hpp"
#include "testing/watchdog.hpp"
#include "util/rng.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace opm = optimus::perfmodel;
namespace osv = optimus::serving;
namespace ots = optimus::testing;

using optimus::tensor::index_t;
using optimus::tensor::ITensor;
using optimus::tensor::Shape;

namespace {

/// Smallest config whose dimensions divide a group of size g and whose GEMMs
/// stay on one side of the kernel-dispatch cutoff in both prefill and decode.
om::TransformerConfig tiny_cfg(int g) {
  om::TransformerConfig cfg;
  cfg.heads = g == 3 ? 3 : 2;
  cfg.hidden = 2 * cfg.heads;  // head_dim 2
  cfg.vocab = g == 3 ? 9 : 8;
  cfg.batch = g == 3 ? 3 : 4;
  cfg.seq_len = 5;  // odd on purpose: no even-split luck in the cache layout
  cfg.layers = 2;
  cfg.causal = true;
  cfg.seed = 42;
  return cfg;
}

ITensor random_tokens(const om::TransformerConfig& cfg, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  ITensor t(Shape{cfg.batch, cfg.seq_len});
  for (index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<std::int32_t>(rng.uniform_index(cfg.vocab));
  }
  return t;
}

opm::Workload workload_of(const om::TransformerConfig& cfg) {
  opm::Workload w;
  w.b = cfg.batch;
  w.s = cfg.seq_len;
  w.h = cfg.hidden;
  w.n = cfg.heads;
  w.v = cfg.vocab;
  w.layers = cfg.layers;
  return w;
}

/// Requests with odd prompt lengths and staggered arrivals; deterministic.
std::vector<osv::Request> odd_requests(index_t vocab) {
  const std::size_t prompt_len[] = {1, 3, 5, 3, 1};
  const std::size_t max_new[] = {2, 3, 3, 2, 2};
  const double arrival[] = {0.0, 0.0, 0.0, 0.1, 0.2};
  optimus::util::Rng rng(5);
  std::vector<osv::Request> reqs;
  for (int i = 0; i < 5; ++i) {
    osv::Request r;
    r.id = i;
    r.arrival = arrival[i];
    r.max_new_tokens = max_new[i];
    for (std::size_t k = 0; k < prompt_len[i]; ++k) {
      r.prompt.push_back(static_cast<std::int32_t>(rng.uniform_index(vocab)));
    }
    reqs.push_back(std::move(r));
  }
  return reqs;
}

/// Generated tokens per request id from a set of completed requests.
std::vector<std::vector<std::int32_t>> outputs_by_id(const std::vector<osv::Request>& done,
                                                     std::size_t count) {
  std::vector<std::vector<std::int32_t>> out(count);
  for (const osv::Request& r : done) out[static_cast<std::size_t>(r.id)] = r.generated;
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scheduler unit behavior.
// ---------------------------------------------------------------------------

TEST(Serving, SchedulerAdmitsFifoAndReusesFreedSlots) {
  ots::Watchdog wd("scheduler fifo test", std::chrono::seconds(120));
  osv::ContinuousBatchScheduler sched(/*slots=*/2, /*capacity=*/8);
  auto reqs = odd_requests(/*vocab=*/8);
  for (auto& r : reqs) sched.submit(std::move(r));

  ASSERT_TRUE(sched.admit(0.0));  // ids 0 and 1 (arrival 0) take the slots
  ASSERT_NE(sched.request_in_slot(0), nullptr);
  ASSERT_NE(sched.request_in_slot(1), nullptr);
  EXPECT_EQ(sched.request_in_slot(0)->id, 0);
  EXPECT_EQ(sched.request_in_slot(1)->id, 1);
  EXPECT_EQ(sched.queued(), 3u);

  // Drive id 0 (prompt 1, max_new 2) to completion with forced outputs. Each
  // step feeds one forced token and — once the cursor passes the forced end —
  // banks a generated one, so prompt 1 + 2 outputs takes 2 steps (the step
  // feeding the last prompt token already yields the first generation).
  std::vector<std::int32_t> tokens;
  std::vector<std::uint8_t> active;
  for (int step = 0; step < 2; ++step) {
    sched.plan_step(tokens, active);
    EXPECT_EQ(active[0], 1);
    EXPECT_EQ(active[1], 1);
    sched.commit_step({7, 7}, 0.0);
  }
  // id 0 finished; its slot must be free and the next admit hands it to id 2
  // (FIFO over arrived requests).
  EXPECT_EQ(sched.completed().size(), 1u);
  EXPECT_EQ(sched.completed()[0].id, 0);
  EXPECT_EQ(sched.request_in_slot(0), nullptr);
  ASSERT_TRUE(sched.admit(0.0));
  ASSERT_NE(sched.request_in_slot(0), nullptr);
  EXPECT_EQ(sched.request_in_slot(0)->id, 2);
}

TEST(Serving, SchedulerArrivedQueuedExcludesFutureArrivals) {
  ots::Watchdog wd("scheduler backlog test", std::chrono::seconds(120));
  osv::ContinuousBatchScheduler sched(/*slots=*/1, /*capacity=*/8);
  auto reqs = odd_requests(/*vocab=*/8);
  for (auto& r : reqs) sched.submit(std::move(r));
  ASSERT_TRUE(sched.admit(0.0));  // id 0 occupies the only slot
  // ids 1 and 2 (arrival 0) have arrived and wait; 3 and 4 are in the future.
  EXPECT_EQ(sched.queued(), 4u);
  EXPECT_EQ(sched.arrived_queued(0.0), 2u);
  EXPECT_EQ(sched.arrived_queued(0.15), 3u);
  EXPECT_EQ(sched.arrived_queued(1.0), 4u);
}

TEST(Serving, SchedulerEvictRewindsCursorAndPreservesProgress) {
  ots::Watchdog wd("scheduler evict test", std::chrono::seconds(120));
  osv::ContinuousBatchScheduler sched(/*slots=*/1, /*capacity=*/8);
  osv::Request r;
  r.id = 0;
  r.prompt = {3, 1, 4};
  r.max_new_tokens = 3;
  sched.submit(std::move(r));
  ASSERT_TRUE(sched.admit(0.0));
  std::vector<std::int32_t> tokens;
  std::vector<std::uint8_t> active;
  // Four steps: the prompt replay yields the first generation on step 3, so
  // two tokens are banked and one generation remains outstanding.
  for (int step = 0; step < 4; ++step) {
    sched.plan_step(tokens, active);
    sched.commit_step({6}, 0.0);
  }
  ASSERT_NE(sched.request_in_slot(0), nullptr);
  EXPECT_EQ(sched.request_in_slot(0)->generated.size(), 2u);
  sched.evict_slot(0);
  EXPECT_EQ(sched.request_in_slot(0), nullptr);
  // Re-admit: the forced sequence now replays prompt ++ generated from fed=0.
  ASSERT_TRUE(sched.admit(0.0));
  const osv::Request* back = sched.request_in_slot(0);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->fed, 0u);
  EXPECT_EQ(back->generated.size(), 2u);
  EXPECT_EQ(back->evictions, 1);
  sched.plan_step(tokens, active);
  EXPECT_EQ(tokens[0], 3);  // replay starts at the first prompt token
}

// ---------------------------------------------------------------------------
// Bitwise decode ≡ prefill, all three engines.
// ---------------------------------------------------------------------------

TEST(Serving, DecodeMatchesPrefillBitwiseSerial) {
  ots::Watchdog wd("serial decode equivalence", std::chrono::seconds(120));
  const om::TransformerConfig cfg = tiny_cfg(1);
  const ITensor tokens = random_tokens(cfg, 9);
  om::SerialTransformer<float> m(cfg);
  const auto hidden = m.forward(tokens).clone();  // [b*s, h]
  const auto logits = m.lm_logits();              // [b*s, v]
  auto cache = m.make_kv_cache(cfg.batch);
  const index_t h = cfg.hidden, v = cfg.vocab, s = cfg.seq_len;
  for (index_t t = 0; t < s; ++t) {
    ITensor step(Shape{cfg.batch});
    for (index_t b = 0; b < cfg.batch; ++b) step[b] = tokens.at(b, t);
    const auto& hid = m.forward_decode(step, cache);
    const auto lg = m.lm_logits_decode();
    for (index_t b = 0; b < cfg.batch; ++b) {
      EXPECT_EQ(0, std::memcmp(hid.data() + b * h, hidden.data() + (b * s + t) * h,
                               sizeof(float) * static_cast<std::size_t>(h)))
          << "hidden row b=" << b << " t=" << t;
      EXPECT_EQ(0, std::memcmp(lg.data() + b * v, logits.data() + (b * s + t) * v,
                               sizeof(float) * static_cast<std::size_t>(v)))
          << "logits row b=" << b << " t=" << t;
    }
  }
}

TEST(Serving, DecodeMatchesPrefillBitwiseOptimus) {
  ots::Watchdog wd("optimus decode equivalence", std::chrono::seconds(240));
  for (const int q : {1, 2, 3}) {
    SCOPED_TRACE(::testing::Message() << "q=" << q);
    const om::TransformerConfig cfg = tiny_cfg(q);
    const ITensor tokens = random_tokens(cfg, 9);
    int bad_hidden = 0, bad_logits = 0;
    std::mutex mu;
    oc::run_cluster(q * q, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> eng(cfg, mesh);
      const auto hidden = eng.forward(tokens).clone();  // [b*s/q, h/q]
      const auto logits = eng.lm_logits_block();        // [b*s/q, v/q]
      auto cache = eng.make_kv_cache(cfg.batch);
      const index_t nl = cache.slots(), hq = eng.h_local(), vq = eng.vocab_local();
      const index_t s = cfg.seq_len;
      for (index_t t = 0; t < s; ++t) {
        ITensor step(Shape{cfg.batch});
        for (index_t b = 0; b < cfg.batch; ++b) step[b] = tokens.at(b, t);
        const auto hid = eng.forward_decode(step, cache, nullptr).clone();
        const auto lg = eng.lm_logits_decode_block();
        std::lock_guard<std::mutex> lock(mu);
        for (index_t r = 0; r < nl; ++r) {
          bad_hidden += std::memcmp(hid.data() + r * hq, hidden.data() + (r * s + t) * hq,
                                    sizeof(float) * static_cast<std::size_t>(hq)) != 0;
          bad_logits += std::memcmp(lg.data() + r * vq, logits.data() + (r * s + t) * vq,
                                    sizeof(float) * static_cast<std::size_t>(vq)) != 0;
        }
      }
    });
    EXPECT_EQ(bad_hidden, 0);
    EXPECT_EQ(bad_logits, 0);
  }
}

TEST(Serving, DecodeMatchesPrefillBitwiseMegatron) {
  ots::Watchdog wd("megatron decode equivalence", std::chrono::seconds(240));
  for (const int p : {1, 2, 3}) {
    SCOPED_TRACE(::testing::Message() << "p=" << p);
    const om::TransformerConfig cfg = tiny_cfg(p);
    const ITensor tokens = random_tokens(cfg, 9);
    int bad = 0;
    std::mutex mu;
    oc::run_cluster(p, [&](oc::Context& ctx) {
      optimus::megatron::MegatronTransformer<float> eng(cfg, ctx.world);
      const auto hidden = eng.forward(tokens).clone();  // [b*s, h] replicated
      auto cache = eng.make_kv_cache(cfg.batch);
      const index_t h = cfg.hidden, s = cfg.seq_len;
      for (index_t t = 0; t < s; ++t) {
        ITensor step(Shape{cfg.batch});
        for (index_t b = 0; b < cfg.batch; ++b) step[b] = tokens.at(b, t);
        const auto hid = eng.forward_decode(step, cache, nullptr).clone();
        std::lock_guard<std::mutex> lock(mu);
        for (index_t b = 0; b < cfg.batch; ++b) {
          bad += std::memcmp(hid.data() + b * h, hidden.data() + (b * s + t) * h,
                             sizeof(float) * static_cast<std::size_t>(h)) != 0;
        }
      }
    });
    EXPECT_EQ(bad, 0);
  }
}

// ---------------------------------------------------------------------------
// End-to-end serving: cross-engine agreement, eviction replay, fault paths.
// ---------------------------------------------------------------------------

namespace {

om::TransformerConfig serving_cfg() {
  om::TransformerConfig cfg = tiny_cfg(2);
  cfg.seq_len = 6;  // room for prompt + output under the traffic below
  return cfg;
}

std::vector<osv::Request> serving_traffic(const om::TransformerConfig& cfg) {
  osv::TrafficConfig tc;
  tc.rate = 1.0;
  tc.count = 6;
  tc.prompt_min = 1;
  tc.prompt_max = 3;
  tc.output_min = 1;
  tc.output_max = 3;
  tc.vocab = cfg.vocab;
  tc.capacity = cfg.seq_len;
  tc.seed = 7;
  return osv::poisson_open_loop(tc);
}

/// Serves the fixed traffic on the serial engine; generated tokens per id.
std::vector<std::vector<std::int32_t>> serial_served_outputs(
    const om::TransformerConfig& cfg, const std::vector<osv::Request>& reqs) {
  om::SerialTransformer<float> m(cfg);
  osv::SerialDecodeEngine<float> eng(m, cfg.batch);
  double t = 0;
  const auto outcome = osv::run_serving<float>(
      eng, reqs, [&] { return t; }, [&](double x) { t = x; });
  EXPECT_FALSE(outcome.aborted);
  EXPECT_EQ(outcome.completed.size(), reqs.size());
  return outputs_by_id(outcome.completed, reqs.size());
}

}  // namespace

TEST(Serving, CrossEngineServedTokensIdentical) {
  ots::Watchdog wd("cross-engine serving test", std::chrono::seconds(240));
  const om::TransformerConfig cfg = serving_cfg();
  const auto reqs = serving_traffic(cfg);
  const auto serial_out = serial_served_outputs(cfg, reqs);

  int mismatch_2d = 0, mismatch_1d = 0;
  std::mutex mu;
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> m(cfg, mesh);
    osv::OptimusDecodeEngine<float> eng(m, cfg.batch);
    const auto outcome = osv::run_serving<float>(
        eng, reqs, [&] { return ctx.clock.now(); }, [&](double t) { ctx.clock.set(t); });
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(outcome.aborted);
    EXPECT_EQ(outcome.completed.size(), reqs.size());
    for (const auto& r : outcome.completed) {
      mismatch_2d += r.generated != serial_out[static_cast<std::size_t>(r.id)];
    }
  });
  oc::run_cluster(2, [&](oc::Context& ctx) {
    optimus::megatron::MegatronTransformer<float> m(cfg, ctx.world);
    osv::MegatronDecodeEngine<float> eng(m, ctx.world, cfg.batch);
    const auto outcome = osv::run_serving<float>(
        eng, reqs, [&] { return ctx.clock.now(); }, [&](double t) { ctx.clock.set(t); });
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(outcome.aborted);
    EXPECT_EQ(outcome.completed.size(), reqs.size());
    for (const auto& r : outcome.completed) {
      mismatch_1d += r.generated != serial_out[static_cast<std::size_t>(r.id)];
    }
  });
  EXPECT_EQ(mismatch_2d, 0);
  EXPECT_EQ(mismatch_1d, 0);
}

TEST(Serving, EvictionReplayReproducesIdenticalTokens) {
  ots::Watchdog wd("eviction replay test", std::chrono::seconds(120));
  om::TransformerConfig cfg = tiny_cfg(1);
  cfg.seq_len = 9;  // capacity for prompt 5 + output 3
  cfg.batch = 2;    // two slots: admission pressure + freelist reuse
  const auto reqs = odd_requests(cfg.vocab);
  om::SerialTransformer<float> m(cfg);

  // Baseline: no evictions.
  osv::SerialDecodeEngine<float> base_eng(m, cfg.batch);
  double t1 = 0;
  const auto base = osv::run_serving<float>(
      base_eng, reqs, [&] { return t1; }, [&](double x) { t1 = x; });
  ASSERT_EQ(base.completed.size(), reqs.size());
  const auto base_out = outputs_by_id(base.completed, reqs.size());

  // Same traffic, but slot 0 is forcibly evicted twice mid-stream. The
  // request rewinds to fed=0, re-admits, replays its forced sequence — and
  // must land on byte-identical generated tokens.
  osv::SerialDecodeEngine<float> evict_eng(m, cfg.batch);
  double t2 = 0;
  osv::ServingSession<float> session(evict_eng, reqs);
  using Step = osv::ServingSession<float>::Step;
  int steps = 0;
  for (;;) {
    const Step s = session.step([&] { return t2; });
    if (s == Step::kDone) break;
    if (s == Step::kIdle) {
      t2 = session.scheduler().next_arrival();
      continue;
    }
    ++steps;
    if ((steps == 2 || steps == 6) && session.scheduler().request_in_slot(0) != nullptr) {
      session.scheduler().evict_slot(0);
      session.engine().reset_slot(0);
    }
  }
  const auto& done = session.scheduler().completed();
  ASSERT_EQ(done.size(), reqs.size());
  int evictions = 0;
  for (const auto& r : done) {
    evictions += r.evictions;
    EXPECT_EQ(r.generated, base_out[static_cast<std::size_t>(r.id)]) << "request " << r.id;
  }
  EXPECT_GT(evictions, 0) << "test failed to exercise any eviction";
}

TEST(Serving, LatencyFaultsLeaveServedTokensIdentical) {
  ots::Watchdog wd("serving latency fault test", std::chrono::seconds(240));
  const om::TransformerConfig cfg = serving_cfg();
  const auto reqs = serving_traffic(cfg);
  const auto serial_out = serial_served_outputs(cfg, reqs);

  oc::FaultPlan plan;
  plan.seed = ots::test_seed(77);
  OPTIMUS_SEED_TRACE(plan.seed);
  plan.spike_prob = 0.2;
  plan.spike_us = 100;
  plan.stall_rank = 1;
  plan.stall_prob = 0.25;
  plan.stall_us = 150;
  int mismatch = 0;
  std::mutex mu;
  oc::run_cluster(4, plan, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> m(cfg, mesh);
    osv::OptimusDecodeEngine<float> eng(m, cfg.batch);
    const auto outcome = osv::run_serving<float>(
        eng, reqs, [&] { return ctx.clock.now(); }, [&](double t) { ctx.clock.set(t); });
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(outcome.aborted);
    EXPECT_EQ(outcome.completed.size(), reqs.size());
    for (const auto& r : outcome.completed) {
      mismatch += r.generated != serial_out[static_cast<std::size_t>(r.id)];
    }
  });
  EXPECT_EQ(mismatch, 0);
}

TEST(Serving, PoisonedDecodeCollectiveAbortsAndResumes) {
  ots::Watchdog wd("serving poison fault test", std::chrono::seconds(240));
  const om::TransformerConfig cfg = serving_cfg();
  const auto reqs = serving_traffic(cfg);
  const auto serial_out = serial_served_outputs(cfg, reqs);

  // Poison one collective mid-run: every rank's serving loop must unwind
  // (FaultError on the detecting rank, FabricAborted on its peers — never a
  // deadlock), committed requests must survive, and in-flight requests must
  // come back evicted with their generated prefix intact.
  oc::FaultPlan plan;
  plan.seed = 13;
  plan.poison_prob = 0.001;
  // Arm the flight recorder: the abort must leave a post-mortem dump on every
  // rank. (Only existence and a named abort op are asserted here — this fault
  // fires mid-run, so ring *contents* differ per rank; byte-determinism is
  // covered by Fault.PoisonedCollectiveLeavesPostmortemOnEveryRank.)
  namespace ob = optimus::obs;
  struct FlightGuard {
    ~FlightGuard() {
      ob::set_flight_enabled(false);
      ob::flight_reset();
      ob::flight_set_postmortem_prefix("");
    }
  } flight_guard;
  const std::string pm_prefix = ::testing::TempDir() + "serving_postmortem";
  ob::flight_reset();
  ob::set_flight_enabled(true);
  ob::flight_set_postmortem_prefix(pm_prefix);
  std::vector<osv::Request> completed_at_abort, unfinished;
  std::string fault_what;
  int aborted_ranks = 0;
  std::mutex mu;
  oc::run_cluster(4, plan, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> m(cfg, mesh);
    osv::OptimusDecodeEngine<float> eng(m, cfg.batch);
    auto outcome = osv::run_serving<float>(
        eng, reqs, [&] { return ctx.clock.now(); }, [&](double t) { ctx.clock.set(t); });
    std::lock_guard<std::mutex> lock(mu);
    aborted_ranks += outcome.aborted ? 1 : 0;
    if (!outcome.fault_what.empty()) fault_what = outcome.fault_what;
    if (ctx.rank == 0) {
      completed_at_abort = std::move(outcome.completed);
      unfinished = std::move(outcome.unfinished);
    }
  });
  ASSERT_EQ(aborted_ranks, 4) << "poisoned collective did not abort the serving loop";
  EXPECT_NE(fault_what.find("poisoned payload"), std::string::npos) << fault_what;
  for (int r = 0; r < 4; ++r) {
    const std::string path = pm_prefix + ".rank" + std::to_string(r) + ".json";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "rank " << r << " left no post-mortem dump";
    std::ostringstream buf;
    buf << in.rdbuf();
    const ob::Json dump = ob::Json::parse(buf.str());
    EXPECT_FALSE(dump.get("abort_op").as_string().empty())
        << path << " does not name the aborting op";
    EXPECT_GT(dump.get("events_seen").as_number(), 0.0) << path;
  }
  ob::set_flight_enabled(false);  // resume run below must not redump
  EXPECT_LT(completed_at_abort.size(), reqs.size());
  EXPECT_EQ(completed_at_abort.size() + unfinished.size(), reqs.size())
      << "requests lost across the abort";

  // Resume the preserved requests on a fresh, fault-free cluster. Decode
  // determinism guarantees the replayed forced sequences regenerate the
  // identical cache state, so the union of outputs matches the clean run.
  std::vector<osv::Request> resumed;
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> m(cfg, mesh);
    osv::OptimusDecodeEngine<float> eng(m, cfg.batch);
    auto outcome = osv::run_serving<float>(
        eng, unfinished, [&] { return ctx.clock.now(); }, [&](double t) { ctx.clock.set(t); });
    std::lock_guard<std::mutex> lock(mu);
    EXPECT_FALSE(outcome.aborted);
    if (ctx.rank == 0) resumed = std::move(outcome.completed);
  });
  ASSERT_EQ(completed_at_abort.size() + resumed.size(), reqs.size());
  for (const auto* batch : {&completed_at_abort, &resumed}) {
    for (const auto& r : *batch) {
      EXPECT_EQ(r.generated, serial_out[static_cast<std::size_t>(r.id)]) << "request " << r.id;
    }
  }
}

// ---------------------------------------------------------------------------
// Closed-form decode-step cost: measured simulated time == predicted, with
// heterogeneous cached lengths (exercises the max-over-rows attention term).
// ---------------------------------------------------------------------------

namespace {

/// Two setup steps give slots heterogeneous cached lengths: one full step
/// (all lens → 1), then a step where only the first `uneven` slots are active
/// (their lens → 2). Returns the lens vector the measured step sees.
template <typename Engine>
std::vector<index_t> warm_uneven(Engine& eng, index_t slots, index_t uneven) {
  const std::vector<std::int32_t> toks(static_cast<std::size_t>(slots), 1);
  std::vector<std::uint8_t> all(static_cast<std::size_t>(slots), 1);
  eng.step(toks, all);
  std::vector<std::uint8_t> part(static_cast<std::size_t>(slots), 0);
  for (index_t i = 0; i < uneven; ++i) part[static_cast<std::size_t>(i)] = 1;
  eng.step(toks, part);
  std::vector<index_t> lens(static_cast<std::size_t>(slots), 1);
  for (index_t i = 0; i < uneven; ++i) lens[static_cast<std::size_t>(i)] = 2;
  return lens;
}

}  // namespace

TEST(Serving, DecodeStepTimeMatchesClosedFormSerial) {
  ots::Watchdog wd("serial decode cost test", std::chrono::seconds(120));
  const om::TransformerConfig cfg = tiny_cfg(1);
  const oc::Topology topo(1, /*gpus_per_node=*/4, oc::Arrangement::kBunched, 0);
  const oc::CostModel cost(topo, oc::MachineParams{});
  oc::SimClock clock;
  om::SerialTransformer<float> m(cfg);
  osv::SerialDecodeEngine<float> eng(m, cfg.batch, &clock, &cost);
  const auto lens = warm_uneven(eng, cfg.batch, /*uneven=*/2);
  const double t0 = clock.now();
  eng.step(std::vector<std::int32_t>(static_cast<std::size_t>(cfg.batch), 1),
           std::vector<std::uint8_t>(static_cast<std::size_t>(cfg.batch), 1));
  const double measured = clock.now() - t0;
  const double predicted =
      opm::predict_serial_decode_step_time(cost, workload_of(cfg), lens, sizeof(float));
  ASSERT_GT(predicted, 0);
  EXPECT_LT(std::abs(measured - predicted) / predicted, 1e-9)
      << "measured " << measured << " predicted " << predicted;
}

TEST(Serving, DecodeStepTimeMatchesClosedFormOptimus) {
  ots::Watchdog wd("optimus decode cost test", std::chrono::seconds(240));
  for (const int q : {2, 3}) {
    SCOPED_TRACE(::testing::Message() << "q=" << q);
    const om::TransformerConfig cfg = tiny_cfg(q);
    double measured = -1, predicted = -1;
    std::mutex mu;
    // Single-node topology: the closed form sums one rank's group costs, which
    // is exact only when all mesh rows/columns have cost-homogeneous groups.
    // (The default run_cluster topology packs 4 GPUs per node, so a 3×3 mesh
    // would straddle nodes with per-column tree costs that differ — the
    // cross-group alignment waits are not in the closed form.)
    oc::Cluster cluster(q * q, oc::Topology(q * q, q * q, oc::Arrangement::kBunched, 0),
                        oc::MachineParams{});
    cluster.run([&](oc::Context& ctx) {
      optimus::summa::PipelineGuard guard(false);  // closed form models blocking
      optimus::mesh::Mesh2D mesh(ctx.world);
      optimus::core::OptimusTransformer<float> m(cfg, mesh);
      osv::OptimusDecodeEngine<float> eng(m, cfg.batch);
      // Uneven = one row's slot block, so mesh rows carry different cached
      // lengths and the predictor's max-over-rows attention term is load-bearing.
      const auto lens = warm_uneven(eng, cfg.batch, cfg.batch / q);
      const double t0 = ctx.clock.now();
      eng.step(std::vector<std::int32_t>(static_cast<std::size_t>(cfg.batch), 1),
               std::vector<std::uint8_t>(static_cast<std::size_t>(cfg.batch), 1));
      const double t1 = ctx.clock.now();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) {
        measured = t1 - t0;
        predicted = opm::predict_optimus_decode_step_time(ctx.cost, workload_of(cfg), q, lens,
                                                          sizeof(float));
      }
    });
    ASSERT_GT(predicted, 0);
    EXPECT_LT(std::abs(measured - predicted) / predicted, 1e-9)
        << "measured " << measured << " predicted " << predicted;
  }
}

TEST(Serving, DecodeStepTimeMatchesClosedFormMegatron) {
  ots::Watchdog wd("megatron decode cost test", std::chrono::seconds(240));
  for (const int p : {2, 3}) {
    SCOPED_TRACE(::testing::Message() << "p=" << p);
    const om::TransformerConfig cfg = tiny_cfg(p);
    double measured = -1, predicted = -1;
    std::mutex mu;
    oc::run_cluster(p, [&](oc::Context& ctx) {
      optimus::megatron::MegatronTransformer<float> m(cfg, ctx.world);
      osv::MegatronDecodeEngine<float> eng(m, ctx.world, cfg.batch);
      const auto lens = warm_uneven(eng, cfg.batch, cfg.batch / 2);
      const double t0 = ctx.clock.now();
      eng.step(std::vector<std::int32_t>(static_cast<std::size_t>(cfg.batch), 1),
               std::vector<std::uint8_t>(static_cast<std::size_t>(cfg.batch), 1));
      const double t1 = ctx.clock.now();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) {
        measured = t1 - t0;
        predicted = opm::predict_megatron_decode_step_time(ctx.cost, workload_of(cfg), p, lens,
                                                           sizeof(float));
      }
    });
    ASSERT_GT(predicted, 0);
    EXPECT_LT(std::abs(measured - predicted) / predicted, 1e-9)
        << "measured " << measured << " predicted " << predicted;
  }
}
