// Tests for the dense kernel layer (src/kernel/): packed GEMM correctness
// across all transpose forms / odd shapes / alpha-beta combinations, bitwise
// determinism across thread counts, beta==0 store semantics over poisoned
// memory, the shared thread budget, and the pool itself.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <vector>

#include "kernel/gemm.hpp"
#include "kernel/thread_pool.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace {

namespace ok = optimus::kernel;
namespace ops = optimus::tensor::ops;
using index_t = ok::index_t;

template <typename T>
std::vector<T> random_buffer(index_t n, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  std::vector<T> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<T>(rng.uniform(-1, 1));
  return v;
}

// Textbook reference: C = alpha·op(A)·op(B) + beta·C, beta == 0 stores.
template <typename T>
void gemm_reference(T* C, const T* A, const T* B, index_t m, index_t n, index_t k,
                    index_t lda, index_t ldb, index_t ldc, ok::Trans ta, ok::Trans tb,
                    T alpha, T beta) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      T acc{0};
      for (index_t p = 0; p < k; ++p) {
        const T a = ta == ok::Trans::No ? A[i * lda + p] : A[p * lda + i];
        const T b = tb == ok::Trans::No ? B[p * ldb + j] : B[j * ldb + p];
        acc += a * b;
      }
      T& c = C[i * ldc + j];
      c = beta == T{0} ? alpha * acc : alpha * acc + beta * c;
    }
  }
}

template <typename T>
T tolerance(index_t k);
template <>
float tolerance<float>(index_t k) {
  return 1e-5f * static_cast<float>(k + 1);
}
template <>
double tolerance<double>(index_t k) {
  return 1e-12 * static_cast<double>(k + 1);
}

// Runs one (m, n, k, ta, tb, alpha, beta) case against the reference, on both
// the packed single-thread path and the threaded entry point, with padded row
// strides to exercise non-contiguous layouts.
template <typename T>
void check_case(index_t m, index_t n, index_t k, ok::Trans ta, ok::Trans tb, T alpha,
                T beta) {
  const index_t pad = 3;
  const index_t lda = (ta == ok::Trans::No ? k : m) + pad;
  const index_t ldb = (tb == ok::Trans::No ? n : k) + pad;
  const index_t ldc = n + pad;
  const index_t a_rows = ta == ok::Trans::No ? m : k;
  const index_t b_rows = tb == ok::Trans::No ? k : n;

  auto A = random_buffer<T>(a_rows * lda, 11);
  auto B = random_buffer<T>(b_rows * ldb, 22);
  auto C0 = random_buffer<T>(m * ldc, 33);

  std::vector<T> want = C0;
  gemm_reference(want.data(), A.data(), B.data(), m, n, k, lda, ldb, ldc, ta, tb, alpha,
                 beta);

  const T tol = tolerance<T>(k) * (std::abs(alpha) + std::abs(beta) + T{1});
  SCOPED_TRACE(::testing::Message()
               << "m=" << m << " n=" << n << " k=" << k << " ta=" << int(ta)
               << " tb=" << int(tb) << " alpha=" << alpha << " beta=" << beta);

  std::vector<T> got = C0;
  ok::gemm_packed(got.data(), A.data(), B.data(), m, n, k, lda, ldb, ldc, ta, tb, alpha,
                  beta);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      ASSERT_NEAR(got[i * ldc + j], want[i * ldc + j], tol) << "packed at " << i << "," << j;
    }
  }
  // Padding bytes must be untouched.
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = n; j < ldc; ++j) {
      ASSERT_EQ(got[i * ldc + j], C0[i * ldc + j]) << "padding clobbered at " << i << "," << j;
    }
  }

  ok::set_threads(4);
  std::vector<T> got_mt = C0;
  ok::gemm(got_mt.data(), A.data(), B.data(), m, n, k, lda, ldb, ldc, ta, tb, alpha, beta);
  ok::set_threads(0);
  EXPECT_EQ(0, std::memcmp(got_mt.data(), got.data(), got.size() * sizeof(T)))
      << "threaded result differs from packed";
}

TEST(KernelGemm, SmallShapeSweepF32) {
  const index_t sizes[] = {1, 2, 3, 5, 8, 13, 17, 33};
  const ok::Trans forms[] = {ok::Trans::No, ok::Trans::Yes};
  int case_idx = 0;
  for (index_t m : sizes) {
    for (index_t n : sizes) {
      for (index_t k : sizes) {
        // Rotate through transpose forms and alpha/beta pairs so the sweep
        // stays fast but every combination appears many times across shapes.
        const ok::Trans ta = forms[case_idx % 2];
        const ok::Trans tb = forms[(case_idx / 2) % 2];
        const float alphas[] = {1.0f, -0.5f, 0.0f};
        const float betas[] = {0.0f, 1.0f, -0.5f};
        const float alpha = alphas[case_idx % 3];
        const float beta = betas[(case_idx / 3) % 3];
        check_case<float>(m, n, k, ta, tb, alpha, beta);
        ++case_idx;
      }
    }
  }
}

TEST(KernelGemm, AllTransposeFormsAllAlphaBetaF32) {
  // One fixed odd shape, the full 4×9 cross product.
  for (ok::Trans ta : {ok::Trans::No, ok::Trans::Yes}) {
    for (ok::Trans tb : {ok::Trans::No, ok::Trans::Yes}) {
      for (float alpha : {0.0f, 1.0f, -0.5f}) {
        for (float beta : {0.0f, 1.0f, -0.5f}) {
          check_case<float>(13, 19, 29, ta, tb, alpha, beta);
        }
      }
    }
  }
}

TEST(KernelGemm, AllTransposeFormsF64) {
  for (ok::Trans ta : {ok::Trans::No, ok::Trans::Yes}) {
    for (ok::Trans tb : {ok::Trans::No, ok::Trans::Yes}) {
      check_case<double>(17, 23, 31, ta, tb, 1.0, 0.0);
      check_case<double>(5, 67, 7, ta, tb, -0.5, 1.0);
    }
  }
}

TEST(KernelGemm, LargerThanOnePanel) {
  // Crosses the kMC/kKC/kNC panel boundaries (and the microkernel edge
  // handling) in one go.
  check_case<float>(131, 1031, 261, ok::Trans::No, ok::Trans::No, 1.0f, 0.0f);
  check_case<float>(70, 90, 300, ok::Trans::Yes, ok::Trans::Yes, -0.5f, 1.0f);
}

TEST(KernelGemm, DeterministicAcrossThreadCounts) {
  // Bitwise identical output for 1 vs 4 threads (DESIGN.md §5).
  const index_t m = 137, n = 93, k = 211;
  auto A = random_buffer<float>(m * k, 7);
  auto B = random_buffer<float>(k * n, 8);
  std::vector<float> c1(static_cast<std::size_t>(m * n)), c4 = c1;

  ok::set_threads(1);
  ok::gemm(c1.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No, ok::Trans::No,
           1.0f, 0.0f);
  ok::set_threads(4);
  ok::gemm(c4.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No, ok::Trans::No,
           1.0f, 0.0f);
  ok::set_threads(0);
  EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(float)));
}

TEST(KernelGemm, CooperativeBitwiseForThreads1Through4EdgeShapes) {
  // The cooperative scheduler claims pack work and MC×NR tiles dynamically;
  // the contract is that ownership never changes arithmetic. Every thread
  // count must reproduce the 1-thread result bit for bit, including shapes
  // that are not multiples of MR=4, NR (16 f32 / 8 f64) or kKC=256 — the
  // microkernel edge paths and partial K panels.
  struct Shape3 {
    index_t m, n, k;
  };
  const Shape3 shapes[] = {
      {130, 1037, 519},  // crosses kMC/kNC/kKC with remainders everywhere
      {67, 45, 300},     // partial K panel, edge tiles both dims
      {3, 17, 257},      // below one microtile in M, K just past a panel
      {257, 31, 5},      // tall & skinny, tiny K
  };
  auto run = [](auto tag, const Shape3& s) {
    using T = decltype(tag);
    auto A = random_buffer<T>(s.m * s.k, 71);
    auto B = random_buffer<T>(s.k * s.n, 72);
    std::vector<T> base(static_cast<std::size_t>(s.m * s.n));
    ok::set_threads(1);
    ok::gemm(base.data(), A.data(), B.data(), s.m, s.n, s.k, s.k, s.n, s.n,
             ok::Trans::No, ok::Trans::No, T{1}, T{0});
    for (int t : {2, 3, 4}) {
      ok::set_threads(t);
      std::vector<T> got(static_cast<std::size_t>(s.m * s.n));
      ok::gemm(got.data(), A.data(), B.data(), s.m, s.n, s.k, s.k, s.n, s.n,
               ok::Trans::No, ok::Trans::No, T{1}, T{0});
      EXPECT_EQ(0, std::memcmp(base.data(), got.data(), base.size() * sizeof(T)))
          << "threads=" << t << " m=" << s.m << " n=" << s.n << " k=" << s.k;
    }
    ok::set_threads(0);
  };
  for (const auto& s : shapes) {
    run(float{}, s);
    run(double{}, s);
  }
}

// Unfused two-pass reference for each epilogue: gemm, then the elementwise op
// over the full C — exactly the pre-fusion model-layer sequence. The fused
// path must match it bitwise (same scalar ops, same order, just tile-hot).
template <typename T>
void epilogue_reference(ok::Epilogue op, T* C, const T* bias, const T* res, T* pre,
                        index_t m, index_t n) {
  for (index_t i = 0; i < m; ++i) {
    T* row = C + i * n;
    switch (op) {
      case ok::Epilogue::BiasAdd:
        for (index_t j = 0; j < n; ++j) row[j] += bias[j];
        break;
      case ok::Epilogue::BiasGelu:
        for (index_t j = 0; j < n; ++j) {
          const T v = row[j] + bias[j];
          pre[i * n + j] = v;
          row[j] = ok::gelu_scalar(v);
        }
        break;
      case ok::Epilogue::ResidualAdd:
        for (index_t j = 0; j < n; ++j) row[j] = (row[j] + bias[j]) + res[i * n + j];
        break;
      case ok::Epilogue::None:
        break;
    }
  }
}

template <typename T>
void check_epilogue_bitwise(ok::Epilogue op, index_t m, index_t n, index_t k) {
  auto A = random_buffer<T>(m * k, 81);
  auto B = random_buffer<T>(k * n, 82);
  auto bias = random_buffer<T>(n, 83);
  auto res = random_buffer<T>(m * n, 84);

  std::vector<T> want(static_cast<std::size_t>(m * n));
  std::vector<T> want_pre(static_cast<std::size_t>(m * n), T{0});
  ok::set_threads(1);
  ok::gemm(want.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
           ok::Trans::No, T{1}, T{0});
  epilogue_reference<T>(op, want.data(), bias.data(), res.data(), want_pre.data(), m, n);

  ok::EpilogueArgs<T> ep;
  ep.op = op;
  ep.bias = bias.data();
  if (op == ok::Epilogue::ResidualAdd) {
    ep.residual = res.data();
    ep.ldr = n;
  }
  std::vector<T> got_pre(static_cast<std::size_t>(m * n), T{0});
  if (op == ok::Epilogue::BiasGelu) {
    ep.pre = got_pre.data();
    ep.ldp = n;
  }
  for (int t : {1, 4}) {
    SCOPED_TRACE(::testing::Message() << "op=" << int(op) << " threads=" << t
                                      << " m=" << m << " n=" << n << " k=" << k);
    ok::set_threads(t);
    std::vector<T> got(static_cast<std::size_t>(m * n));
    std::fill(got_pre.begin(), got_pre.end(), T{0});
    ok::gemm_ex(got.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
                ok::Trans::No, T{1}, T{0}, ep);
    EXPECT_EQ(0, std::memcmp(want.data(), got.data(), want.size() * sizeof(T)))
        << "fused output differs from unfused reference";
    if (op == ok::Epilogue::BiasGelu) {
      EXPECT_EQ(0, std::memcmp(want_pre.data(), got_pre.data(),
                               want_pre.size() * sizeof(T)))
          << "pre-activation differs from unfused reference";
    }
  }
  ok::set_threads(0);
}

TEST(KernelGemmEpilogue, FusedBitwiseVsUnfusedReference) {
  const ok::Epilogue ops_[] = {ok::Epilogue::BiasAdd, ok::Epilogue::BiasGelu,
                               ok::Epilogue::ResidualAdd};
  for (ok::Epilogue op : ops_) {
    // Edge shape (no dimension a multiple of MR/NR/KC) and a multi-panel one.
    check_epilogue_bitwise<float>(op, 67, 45, 300);
    check_epilogue_bitwise<float>(op, 130, 517, 260);
    check_epilogue_bitwise<double>(op, 67, 45, 300);
  }
}

TEST(KernelGemmEpilogue, DegenerateKStillAppliesEpilogue) {
  // k == 0 with beta == 0 zero-fills C and must still run the epilogue tail
  // (bias over zeros), matching the unfused sequence.
  const index_t m = 9, n = 21;
  auto bias = random_buffer<float>(n, 5);
  ok::EpilogueArgs<float> ep;
  ep.op = ok::Epilogue::BiasAdd;
  ep.bias = bias.data();
  std::vector<float> C(static_cast<std::size_t>(m * n),
                       std::numeric_limits<float>::quiet_NaN());
  const float* null_ab = nullptr;
  ok::gemm_ex(C.data(), null_ab, null_ab, m, n, /*k=*/0, 1, n, n, ok::Trans::No,
              ok::Trans::No, 1.0f, 0.0f, ep);
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) ASSERT_EQ(C[i * n + j], bias[j]);
}

TEST(KernelGemm, BetaZeroStoresOverNaN) {
  // beta == 0 must *store*, never scale: a C buffer full of NaN (as carved
  // from an uninitialised Arena) must come out finite.
  const index_t m = 37, n = 41, k = 53;
  auto A = random_buffer<float>(m * k, 1);
  auto B = random_buffer<float>(k * n, 2);
  std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f);
  gemm_reference(want.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
                 ok::Trans::No, 1.0f, 0.0f);

  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (auto* path : {"packed", "threaded", "dispatch"}) {
    std::vector<float> C(static_cast<std::size_t>(m * n), nan);
    if (std::string(path) == "packed") {
      ok::gemm_packed(C.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No,
                      ok::Trans::No, 1.0f, 0.0f);
    } else if (std::string(path) == "threaded") {
      ok::set_threads(4);
      ok::gemm(C.data(), A.data(), B.data(), m, n, k, k, n, n, ok::Trans::No, ok::Trans::No,
               1.0f, 0.0f);
      ok::set_threads(0);
    } else {
      ops::gemm_raw(C.data(), A.data(), B.data(), m, n, k, k, n, n, ops::Trans::No,
                    ops::Trans::No, 1.0f, 0.0f);
    }
    for (std::size_t i = 0; i < C.size(); ++i) {
      ASSERT_TRUE(std::isfinite(C[i])) << path << " left non-finite at " << i;
      ASSERT_NEAR(C[i], want[i], 1e-4f) << path << " wrong at " << i;
    }
  }
  // Degenerate k == 0 with beta == 0 must also store zeros, not NaN·0.
  std::vector<float> C(static_cast<std::size_t>(m * n), nan);
  ok::gemm_packed(C.data(), A.data(), B.data(), m, n, /*k=*/0, k, n, n, ok::Trans::No,
                  ok::Trans::No, 1.0f, 0.0f);
  for (float v : C) ASSERT_EQ(v, 0.0f);
}

TEST(KernelRowOps, DeterministicAcrossThreadCounts) {
  // A row-parallel kernel (softmax) and a column-parallel reduction
  // (bias_grad) must both be bitwise thread-count independent.
  using optimus::tensor::Shape;
  using optimus::tensor::TensorT;
  const index_t rows = 97, cols = 201;
  TensorT<float> x(Shape{rows, cols});
  optimus::util::Rng rng(3);
  for (index_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(rng.uniform(-4, 4));

  TensorT<float> y1(Shape{rows, cols}), y4(Shape{rows, cols});
  TensorT<float> g1(Shape{cols}), g4(Shape{cols});

  ok::set_threads(1);
  ops::softmax_lastdim(x, y1);
  ops::bias_grad(x, g1, /*accumulate=*/false);
  ok::set_threads(4);
  ops::softmax_lastdim(x, y4);
  ops::bias_grad(x, g4, /*accumulate=*/false);
  ok::set_threads(0);

  EXPECT_EQ(0, std::memcmp(y1.data(), y4.data(), sizeof(float) * y1.numel()));
  EXPECT_EQ(0, std::memcmp(g1.data(), g4.data(), sizeof(float) * g1.numel()));
}

TEST(KernelThreadBudget, SharedWithDevices) {
  ok::set_threads(8);
  EXPECT_EQ(ok::configured_threads(), 8);
  EXPECT_EQ(ok::effective_threads(), 8);
  {
    ok::ActiveDevicesGuard guard(4);
    EXPECT_EQ(ok::active_devices(), 4);
    EXPECT_EQ(ok::effective_threads(), 2);  // 8 / 4
    {
      ok::ActiveDevicesGuard nested(12);
      EXPECT_EQ(ok::active_devices(), 16);
      EXPECT_EQ(ok::effective_threads(), 1);  // floor at 1
    }
    EXPECT_EQ(ok::active_devices(), 4);
  }
  EXPECT_EQ(ok::active_devices(), 0);
  ok::set_threads(0);
  EXPECT_GE(ok::configured_threads(), 1);
}

TEST(KernelThreadPool, CoversEveryChunkExactlyOnce) {
  ok::set_threads(4);
  const index_t n = 1000, grain = 7;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  for (auto& h : hits) h.store(0);
  ok::ThreadPool::global().parallel_for(n, grain, [&](index_t b, index_t e) {
    EXPECT_LT(b, e);
    EXPECT_LE(e - b, grain);
    for (index_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (index_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
  ok::set_threads(0);
}

TEST(KernelThreadPool, ParallelRangesCoverAndAreContiguous) {
  ok::set_threads(4);
  std::vector<std::atomic<int>> hits(103);
  for (auto& h : hits) h.store(0);
  ok::ThreadPool::global().parallel_ranges(103, 4, [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) ASSERT_EQ(hits[i].load(), 1) << i;
  ok::set_threads(0);
}

TEST(KernelThreadPool, PropagatesExceptions) {
  ok::set_threads(4);
  EXPECT_THROW(
      ok::ThreadPool::global().parallel_for(100, 1,
                                            [&](index_t b, index_t) {
                                              if (b == 57) throw std::runtime_error("boom");
                                            }),
      std::runtime_error);
  // The pool must still be usable afterwards.
  std::atomic<int> count{0};
  ok::ThreadPool::global().parallel_for(10, 1, [&](index_t, index_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
  ok::set_threads(0);
}

TEST(KernelThreadPool, ParallelRegionTidsAndBarrier) {
  // SPMD contract: each participant sees a distinct tid in [0, nthreads), all
  // agree on nthreads, and a barrier separates phases — every participant's
  // phase-1 write must be visible to every participant's phase-2 read.
  ok::set_threads(4);
  std::vector<std::atomic<int>> seen(8);
  for (auto& s : seen) s.store(0);
  std::atomic<int> phase1_sum{0};
  std::atomic<bool> ok_flag{true};
  const int actual =
      ok::ThreadPool::global().parallel_region(4, [&](ok::Region& r) {
        EXPECT_GE(r.tid(), 0);
        EXPECT_LT(r.tid(), r.nthreads());
        seen[static_cast<std::size_t>(r.tid())].fetch_add(1);
        phase1_sum.fetch_add(r.tid() + 1);
        r.barrier();
        // Everyone contributed before anyone passed the barrier.
        const int want = r.nthreads() * (r.nthreads() + 1) / 2;
        if (phase1_sum.load() != want) ok_flag.store(false);
        r.barrier();
      });
  EXPECT_GE(actual, 1);
  EXPECT_LE(actual, 4);
  EXPECT_TRUE(ok_flag.load());
  for (int t = 0; t < actual; ++t)
    EXPECT_EQ(seen[static_cast<std::size_t>(t)].load(), 1) << "tid " << t;
  for (std::size_t t = static_cast<std::size_t>(actual); t < seen.size(); ++t)
    EXPECT_EQ(seen[t].load(), 0) << "tid " << t;
  ok::set_threads(0);
}

TEST(KernelThreadPool, ParallelRegionReusableBackToBack) {
  // The persistent region must be cheap to re-enter: many consecutive regions
  // (the SUMMA k-loop pattern) with claim counters, all covered exactly once.
  ok::set_threads(4);
  for (int round = 0; round < 25; ++round) {
    std::vector<std::atomic<int>> hits(64);
    for (auto& h : hits) h.store(0);
    std::atomic<std::size_t> next{0};
    ok::ThreadPool::global().parallel_region(4, [&](ok::Region& r) {
      (void)r;
      for (std::size_t i = next.fetch_add(1); i < hits.size(); i = next.fetch_add(1))
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
  }
  ok::set_threads(0);
}

TEST(KernelThreadPool, NestedRegionsRunInline) {
  // A nested region on a worker thread may be collapsed to a single inline
  // body(0, n) call, so count *covered indices*, not invocations: the range
  // must be covered exactly once either way, with no deadlock.
  ok::set_threads(4);
  std::atomic<int> total{0};
  ok::ThreadPool::global().parallel_for(8, 1, [&](index_t, index_t) {
    ok::ThreadPool::global().parallel_for(
        5, 1, [&](index_t b, index_t e) { total += static_cast<int>(e - b); });
  });
  EXPECT_EQ(total.load(), 40);
  ok::set_threads(0);
}

}  // namespace
