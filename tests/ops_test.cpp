// Tests for the dense kernels: GEMM against a naive reference in all
// transpose forms, and finite-difference validation of every backward pass.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using optimus::testing::check_gradient;
using optimus::testing::random_dtensor;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;
using ot::Tensor;
using ops::Trans;

namespace {

// Naive O(mnk) reference independent of the blocked implementation.
DTensor naive_matmul(const DTensor& A, const DTensor& B, Trans ta, Trans tb) {
  const auto m = ta == Trans::No ? A.size(0) : A.size(1);
  const auto k = ta == Trans::No ? A.size(1) : A.size(0);
  const auto n = tb == Trans::No ? B.size(1) : B.size(0);
  DTensor C = DTensor::zeros(Shape{m, n});
  for (ot::index_t i = 0; i < m; ++i) {
    for (ot::index_t j = 0; j < n; ++j) {
      double acc = 0;
      for (ot::index_t kk = 0; kk < k; ++kk) {
        const double a = ta == Trans::No ? A.at(i, kk) : A.at(kk, i);
        const double b = tb == Trans::No ? B.at(kk, j) : B.at(j, kk);
        acc += a * b;
      }
      C.at(i, j) = acc;
    }
  }
  return C;
}

struct GemmCase {
  ot::index_t m, n, k;
  Trans ta, tb;
};

class GemmSweep : public ::testing::TestWithParam<GemmCase> {};

}  // namespace

TEST_P(GemmSweep, MatchesNaiveReference) {
  const GemmCase c = GetParam();
  optimus::util::Rng rng(1000 + c.m * 7 + c.n * 13 + c.k * 29 +
                         static_cast<int>(c.ta) * 2 + static_cast<int>(c.tb));
  const Shape a_shape = c.ta == Trans::No ? Shape{c.m, c.k} : Shape{c.k, c.m};
  const Shape b_shape = c.tb == Trans::No ? Shape{c.k, c.n} : Shape{c.n, c.k};
  DTensor A = random_dtensor(a_shape, rng);
  DTensor B = random_dtensor(b_shape, rng);
  DTensor C = ops::matmul(A, B, c.ta, c.tb);
  DTensor ref = naive_matmul(A, B, c.ta, c.tb);
  EXPECT_LT(ops::max_abs_diff(C, ref), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllForms, GemmSweep,
    ::testing::Values(
        GemmCase{1, 1, 1, Trans::No, Trans::No}, GemmCase{5, 7, 3, Trans::No, Trans::No},
        GemmCase{64, 48, 33, Trans::No, Trans::No},
        GemmCase{100, 65, 70, Trans::No, Trans::No},  // crosses all block edges
        GemmCase{5, 7, 3, Trans::No, Trans::Yes}, GemmCase{33, 65, 40, Trans::No, Trans::Yes},
        GemmCase{5, 7, 3, Trans::Yes, Trans::No}, GemmCase{33, 65, 40, Trans::Yes, Trans::No},
        GemmCase{5, 7, 3, Trans::Yes, Trans::Yes},
        GemmCase{17, 19, 23, Trans::Yes, Trans::Yes}));

TEST(Gemm, AlphaBetaAccumulate) {
  optimus::util::Rng rng(2);
  DTensor A = random_dtensor(Shape{4, 3}, rng);
  DTensor B = random_dtensor(Shape{3, 5}, rng);
  DTensor C = DTensor::full(Shape{4, 5}, 2.0);
  ops::gemm(C, A, B, Trans::No, Trans::No, 3.0, 0.5);
  DTensor expected = naive_matmul(A, B, Trans::No, Trans::No);
  for (ot::index_t i = 0; i < expected.numel(); ++i) {
    EXPECT_NEAR(C[i], 3.0 * expected[i] + 1.0, 1e-12);
  }
}

TEST(Gemm, CountsMultiplicationsInPaperUnits) {
  ot::DeviceContext ctx;
  ot::ScopedDevice scoped(ctx);
  Tensor A = Tensor::zeros(Shape{8, 16});
  Tensor B = Tensor::zeros(Shape{16, 4});
  ctx.take_mults();
  Tensor C = ops::matmul(A, B);
  EXPECT_EQ(ctx.take_mults(), 8u * 16u * 4u);
}

TEST(Gemm, ShapeMismatchThrows) {
  DTensor A(Shape{2, 3}), B(Shape{4, 5}), C(Shape{2, 5});
  EXPECT_THROW(ops::gemm(C, A, B), optimus::util::CheckError);
}

TEST(Elementwise, AddSubAxpyScale) {
  DTensor a = DTensor::full(Shape{4}, 2.0);
  DTensor b = DTensor::full(Shape{4}, 3.0);
  ops::add_(a, b);
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  ops::sub_(a, b);
  EXPECT_DOUBLE_EQ(a[1], 2.0);
  ops::axpy_(a, 0.5, b);
  EXPECT_DOUBLE_EQ(a[2], 3.5);
  ops::scale_(a, 2.0);
  EXPECT_DOUBLE_EQ(a[3], 7.0);
  DTensor c = ops::add(a, b);
  EXPECT_DOUBLE_EQ(c[0], 10.0);
}

TEST(Elementwise, BiasAddAndGrad) {
  optimus::util::Rng rng(3);
  DTensor y = DTensor::zeros(Shape{3, 4});
  DTensor bias = random_dtensor(Shape{4}, rng);
  ops::add_bias_(y, bias);
  for (int r = 0; r < 3; ++r) {
    for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(y.at(r, j), bias[j]);
  }
  DTensor dy = DTensor::full(Shape{3, 4}, 1.0);
  DTensor dbias = DTensor::zeros(Shape{4});
  ops::bias_grad(dy, dbias, /*accumulate=*/false);
  for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(dbias[j], 3.0);
  ops::bias_grad(dy, dbias, /*accumulate=*/true);
  for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(dbias[j], 6.0);
}

TEST(Gelu, KnownValuesAndMonotoneTail) {
  DTensor x = DTensor::from_vector(Shape{3}, {0.0, 5.0, -5.0});
  DTensor y(Shape{3});
  ops::gelu_forward(x, y);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_NEAR(y[1], 5.0, 1e-3);   // ≈ identity for large x
  EXPECT_NEAR(y[2], 0.0, 1e-3);   // ≈ 0 for very negative x
}

TEST(Gelu, GradientMatchesFiniteDifference) {
  optimus::util::Rng rng(4);
  DTensor x = random_dtensor(Shape{2, 5}, rng, 2.0);
  DTensor dy = random_dtensor(Shape{2, 5}, rng);
  DTensor dx = DTensor::zeros(Shape{2, 5});
  ops::gelu_backward(x, dy, dx, /*accumulate=*/false);
  auto loss = [&] {
    DTensor y(x.shape());
    ops::gelu_forward(x, y);
    double acc = 0;
    for (ot::index_t i = 0; i < y.numel(); ++i) acc += y[i] * dy[i];
    return acc;
  };
  check_gradient(x, loss, dx);
}

TEST(Softmax, RowsSumToOneAndOrderPreserved) {
  optimus::util::Rng rng(5);
  DTensor x = random_dtensor(Shape{4, 9}, rng, 3.0);
  DTensor y(x.shape());
  ops::softmax_lastdim(x, y);
  for (int r = 0; r < 4; ++r) {
    double sum = 0;
    for (int j = 0; j < 9; ++j) sum += y.at(r, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Softmax, StableForLargeLogits) {
  DTensor x = DTensor::from_vector(Shape{1, 3}, {1000.0, 1000.0, 900.0});
  DTensor y(x.shape());
  ops::softmax_lastdim(x, y);
  EXPECT_NEAR(y[0], 0.5, 1e-12);
  EXPECT_NEAR(y[1], 0.5, 1e-12);
  EXPECT_NEAR(y[2], 0.0, 1e-12);
}

TEST(Softmax, GradientMatchesFiniteDifference) {
  optimus::util::Rng rng(6);
  DTensor x = random_dtensor(Shape{3, 6}, rng, 2.0);
  DTensor dy = random_dtensor(Shape{3, 6}, rng);
  DTensor y(x.shape()), dx(x.shape());
  ops::softmax_lastdim(x, y);
  ops::softmax_backward_lastdim(y, dy, dx);
  auto loss = [&] {
    DTensor yy(x.shape());
    ops::softmax_lastdim(x, yy);
    double acc = 0;
    for (ot::index_t i = 0; i < yy.numel(); ++i) acc += yy[i] * dy[i];
    return acc;
  };
  check_gradient(x, loss, dx);
}

TEST(LayerNorm, NormalisesRows) {
  optimus::util::Rng rng(7);
  const int rows = 5, h = 16;
  DTensor x = random_dtensor(Shape{rows, h}, rng, 4.0);
  DTensor gamma = DTensor::full(Shape{h}, 1.0);
  DTensor beta = DTensor::zeros(Shape{h});
  DTensor y(x.shape()), xhat(x.shape()), inv_std(Shape{rows});
  ops::layernorm_forward(x, gamma, beta, 1e-8, y, xhat, inv_std);
  for (int r = 0; r < rows; ++r) {
    double sum = 0, sum_sq = 0;
    for (int j = 0; j < h; ++j) {
      sum += y.at(r, j);
      sum_sq += y.at(r, j) * y.at(r, j);
    }
    EXPECT_NEAR(sum / h, 0.0, 1e-9);
    EXPECT_NEAR(sum_sq / h, 1.0, 1e-6);
  }
}

TEST(LayerNorm, GradientsMatchFiniteDifference) {
  optimus::util::Rng rng(8);
  const int rows = 3, h = 8;
  DTensor x = random_dtensor(Shape{rows, h}, rng, 2.0);
  DTensor gamma = random_dtensor(Shape{h}, rng, 1.0);
  DTensor beta = random_dtensor(Shape{h}, rng, 1.0);
  DTensor dy = random_dtensor(Shape{rows, h}, rng);
  const double eps = 1e-6;

  DTensor y(x.shape()), xhat(x.shape()), inv_std(Shape{rows});
  ops::layernorm_forward(x, gamma, beta, eps, y, xhat, inv_std);
  DTensor dx(x.shape()), dgamma(Shape{h}), dbeta(Shape{h});
  ops::layernorm_backward(xhat, inv_std, gamma, dy, dx, dgamma, dbeta, false);

  auto loss = [&] {
    DTensor yy(x.shape()), hh(x.shape()), ss(Shape{rows});
    ops::layernorm_forward(x, gamma, beta, eps, yy, hh, ss);
    double acc = 0;
    for (ot::index_t i = 0; i < yy.numel(); ++i) acc += yy[i] * dy[i];
    return acc;
  };
  check_gradient(x, loss, dx, 1e-5, 1e-5);
  check_gradient(gamma, loss, dgamma, 1e-5, 1e-5);
  check_gradient(beta, loss, dbeta, 1e-5, 1e-5);
}

TEST(CrossEntropy, MatchesHandComputedLoss) {
  DTensor logits = DTensor::from_vector(Shape{1, 3}, {1.0, 2.0, 3.0});
  ITensor labels = ITensor::from_vector(Shape{1}, {2});
  DTensor probs(logits.shape());
  const double loss = ops::cross_entropy_forward(logits, labels, probs);
  // H = log(sum exp(x)) - x_label
  const double lse = std::log(std::exp(1.0) + std::exp(2.0) + std::exp(3.0));
  EXPECT_NEAR(loss, lse - 3.0, 1e-12);
}

TEST(CrossEntropy, MaskedRowsExcluded) {
  DTensor logits = DTensor::from_vector(Shape{2, 2}, {5.0, 1.0, 0.0, 0.0});
  ITensor labels = ITensor::from_vector(Shape{2}, {0, -1});
  DTensor probs(logits.shape());
  const double loss = ops::cross_entropy_forward(logits, labels, probs);
  const double expected = std::log(std::exp(5.0) + std::exp(1.0)) - 5.0;
  EXPECT_NEAR(loss, expected, 1e-12);  // only row 0 contributes
  DTensor dlogits(logits.shape());
  ops::cross_entropy_backward(probs, labels, 1.0, dlogits);
  EXPECT_DOUBLE_EQ(dlogits.at(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(dlogits.at(1, 1), 0.0);
}

TEST(CrossEntropy, GradientMatchesFiniteDifference) {
  optimus::util::Rng rng(9);
  const int rows = 4, v = 7;
  DTensor logits = random_dtensor(Shape{rows, v}, rng, 2.0);
  std::vector<std::int32_t> raw{0, 3, 6, 2};
  ITensor labels = ITensor::from_vector(Shape{rows}, raw);
  DTensor probs(logits.shape()), dlogits(logits.shape());
  (void)ops::cross_entropy_forward(logits, labels, probs);
  ops::cross_entropy_backward(probs, labels, 1.0 / rows, dlogits);
  auto loss = [&] {
    DTensor pp(logits.shape());
    return ops::cross_entropy_forward(logits, labels, pp);
  };
  check_gradient(logits, loss, dlogits, 1e-5, 1e-6);
}

TEST(Embedding, ForwardGathersRows) {
  DTensor table = DTensor::from_vector(Shape{3, 2}, {0, 1, 10, 11, 20, 21});
  ITensor tokens = ITensor::from_vector(Shape{4}, {2, 0, 1, 2});
  DTensor y(Shape{4, 2});
  ops::embedding_forward(table, tokens, y);
  EXPECT_DOUBLE_EQ(y.at(0, 0), 20);
  EXPECT_DOUBLE_EQ(y.at(1, 1), 1);
  EXPECT_DOUBLE_EQ(y.at(3, 1), 21);
}

TEST(Embedding, BackwardScattersAndAccumulates) {
  ITensor tokens = ITensor::from_vector(Shape{3}, {1, 1, 0});
  DTensor dy = DTensor::from_vector(Shape{3, 2}, {1, 2, 3, 4, 5, 6});
  DTensor dtable = DTensor::zeros(Shape{2, 2});
  ops::embedding_backward(tokens, dy, dtable);
  EXPECT_DOUBLE_EQ(dtable.at(1, 0), 4.0);  // 1 + 3
  EXPECT_DOUBLE_EQ(dtable.at(1, 1), 6.0);  // 2 + 4
  EXPECT_DOUBLE_EQ(dtable.at(0, 0), 5.0);
}

TEST(Reductions, SumMaxNormDiff) {
  DTensor a = DTensor::from_vector(Shape{4}, {1, -2, 3, -4});
  EXPECT_DOUBLE_EQ(ops::sum_all(a), -2.0);
  EXPECT_DOUBLE_EQ(ops::max_abs(a), 4.0);
  EXPECT_DOUBLE_EQ(ops::l2_norm(a), std::sqrt(30.0));
  DTensor b = DTensor::from_vector(Shape{4}, {1, -2, 3.5, -4});
  EXPECT_DOUBLE_EQ(ops::max_abs_diff(a, b), 0.5);
}

TEST(Transpose, RoundTrip) {
  optimus::util::Rng rng(10);
  DTensor a = random_dtensor(Shape{3, 5}, rng);
  DTensor t = ops::transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{5, 3}));
  DTensor tt = ops::transpose2d(t);
  EXPECT_LT(ops::max_abs_diff(a, tt), 1e-15);
}

TEST(CounterInit, BlockFillMatchesGlobalFill) {
  optimus::util::CounterRng rng(77);
  const int R = 8, C = 12, q = 2;
  DTensor global(Shape{R, C});
  ops::fill_counter_uniform(global, rng, /*stream=*/5, 0.1, 0, 0, C);
  // Each block, filled independently with its global offsets, must equal the
  // corresponding region of the globally-filled matrix.
  for (int bi = 0; bi < q; ++bi) {
    for (int bj = 0; bj < q; ++bj) {
      DTensor block(Shape{R / q, C / q});
      ops::fill_counter_uniform(block, rng, 5, 0.1, bi * R / q, bj * C / q, C);
      for (int r = 0; r < R / q; ++r) {
        for (int c = 0; c < C / q; ++c) {
          EXPECT_DOUBLE_EQ(block.at(r, c), global.at(bi * R / q + r, bj * C / q + c));
        }
      }
    }
  }
}

TEST(Cast, FloatDoubleRoundTrip) {
  Tensor f = Tensor::from_vector(Shape{3}, {1.5f, -2.25f, 0.0f});
  auto d = ops::cast<float, double>(f);
  EXPECT_DOUBLE_EQ(d[1], -2.25);
  auto f2 = ops::cast<double, float>(d);
  EXPECT_FLOAT_EQ(f2[0], 1.5f);
}
