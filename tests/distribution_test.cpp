// Tests for block scatter/gather helpers used to move tensors between the
// global (oracle) layout and the per-device q×q block layout.

#include <gtest/gtest.h>

#include "tensor/distribution.hpp"
#include "test_helpers.hpp"

namespace ot = optimus::tensor;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;

namespace {

class BlockRoundTrip : public ::testing::TestWithParam<int> {};

}  // namespace

TEST_P(BlockRoundTrip, MatrixScatterGatherIsIdentity) {
  const int q = GetParam();
  optimus::util::Rng rng(100 + q);
  DTensor global = optimus::testing::random_dtensor(Shape{4 * q, 6 * q}, rng);
  DTensor rebuilt = DTensor::zeros(global.shape());
  for (int i = 0; i < q; ++i) {
    for (int j = 0; j < q; ++j) {
      DTensor block = ot::matrix_block(global, q, i, j);
      EXPECT_EQ(block.shape(), (Shape{4, 6}));
      ot::set_matrix_block(rebuilt, q, i, j, block);
    }
  }
  EXPECT_EQ(ot::ops::max_abs_diff(global, rebuilt), 0.0);
}

TEST_P(BlockRoundTrip, ActivationScatterGatherIsIdentity) {
  const int q = GetParam();
  optimus::util::Rng rng(200 + q);
  DTensor global = optimus::testing::random_dtensor(Shape{2 * q, 5, 3 * q}, rng);
  DTensor rebuilt = DTensor::zeros(global.shape());
  for (int i = 0; i < q; ++i) {
    for (int j = 0; j < q; ++j) {
      DTensor block = ot::activation_block(global, q, i, j);
      EXPECT_EQ(block.shape(), (Shape{2, 5, 3}));
      ot::set_activation_block(rebuilt, q, i, j, block);
    }
  }
  EXPECT_EQ(ot::ops::max_abs_diff(global, rebuilt), 0.0);
}

INSTANTIATE_TEST_SUITE_P(MeshSides, BlockRoundTrip, ::testing::Values(1, 2, 3, 4));

TEST(Distribution, MatrixBlockContents) {
  DTensor g = DTensor::from_vector(Shape{4, 4}, {0,  1,  2,  3,  4,  5,  6,  7,
                                                 8,  9,  10, 11, 12, 13, 14, 15});
  DTensor b = ot::matrix_block(g, 2, 1, 0);
  EXPECT_DOUBLE_EQ(b.at(0, 0), 8);
  EXPECT_DOUBLE_EQ(b.at(1, 1), 13);
}

TEST(Distribution, RowBlockSplitsBatchOnly) {
  ITensor tokens = ITensor::from_vector(Shape{4, 3}, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  ITensor block = ot::row_block(tokens, 2, 1);
  EXPECT_EQ(block.shape(), (Shape{2, 3}));
  EXPECT_EQ(block.at(0, 0), 6);
  EXPECT_EQ(block.at(1, 2), 11);
}

TEST(Distribution, IndivisibleShapesThrow) {
  DTensor g(Shape{5, 4});
  EXPECT_THROW(ot::matrix_block(g, 2, 0, 0), optimus::util::CheckError);
  DTensor a(Shape{4, 3, 5});
  EXPECT_THROW(ot::activation_block(a, 2, 0, 0), optimus::util::CheckError);
}

TEST(Distribution, ActivationBlockKeepsWholeSequence) {
  // The Optimus attention layout: s stays intact on every device.
  optimus::util::Rng rng(3);
  DTensor g = optimus::testing::random_dtensor(Shape{4, 7, 8}, rng);
  DTensor block = ot::activation_block(g, 2, 1, 1);
  for (int b = 0; b < 2; ++b) {
    for (int t = 0; t < 7; ++t) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_DOUBLE_EQ(block.at(b, t, j), g.at(2 + b, t, 4 + j));
      }
    }
  }
}

TEST(Distribution, RandomizedOddShapeBlockRoundTrip) {
  // Property over awkward shapes: odd per-block dims, q up to 4 — scatter
  // into q² blocks then gather reassembles the exact global matrix.
  const std::uint64_t seed = optimus::testing::test_seed(31);
  OPTIMUS_SEED_TRACE(seed);
  optimus::util::Rng rng(seed);
  const ot::index_t odd[] = {1, 3, 5, 7};
  for (int iter = 0; iter < 20; ++iter) {
    const int q = 1 + static_cast<int>(rng.uniform_index(4));
    const ot::index_t rows = q * odd[rng.uniform_index(4)];
    const ot::index_t cols = q * odd[rng.uniform_index(4)];
    DTensor global = optimus::testing::random_dtensor(Shape{rows, cols}, rng);
    DTensor rebuilt(Shape{rows, cols});
    for (int i = 0; i < q; ++i) {
      for (int j = 0; j < q; ++j) {
        ot::set_matrix_block(rebuilt, q, i, j, ot::matrix_block(global, q, i, j));
      }
    }
    ASSERT_EQ(ot::ops::max_abs_diff(global, rebuilt), 0.0)
        << "q=" << q << " shape [" << rows << ", " << cols << "]";
  }
}

TEST(Distribution, NonDivisibleShapesThrowForQ3) {
  DTensor rows_bad(Shape{10, 9});  // 10 % 3 != 0
  EXPECT_THROW(ot::matrix_block(rows_bad, 3, 0, 0), optimus::util::CheckError);
  DTensor cols_bad(Shape{9, 10});  // 10 % 3 != 0
  EXPECT_THROW(ot::matrix_block(cols_bad, 3, 0, 0), optimus::util::CheckError);
  DTensor fits(Shape{9, 15});  // odd multiples of 3 are fine
  EXPECT_EQ(ot::matrix_block(fits, 3, 2, 2).shape(), (Shape{3, 5}));
}
