// Tests for hybrid data × tensor parallelism: group construction, gradient
// averaging, and the flagship equivalence — dp replicas of an Optimus mesh,
// each on a micro-batch, must train exactly like one mesh on the full batch.

#include <gtest/gtest.h>

#include <mutex>

#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "runtime/data.hpp"
#include "runtime/hybrid_parallel.hpp"
#include "runtime/optimizer.hpp"
#include "test_helpers.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace ort = optimus::runtime;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;

TEST(HybridGroups, SplitsWorldIntoReplicasAndShardGroups) {
  oc::run_cluster(8, [](oc::Context& ctx) {
    auto groups = ort::make_hybrid_groups(ctx.world, /*tp_size=*/4);
    ASSERT_EQ(groups.tp.size(), 4);
    ASSERT_EQ(groups.dp.size(), 2);
    ASSERT_EQ(groups.replicas, 2);
    ASSERT_EQ(groups.replica, ctx.rank / 4);
    ASSERT_EQ(groups.tp.rank(), ctx.rank % 4);
    // The dp group pairs the same tp-rank across replicas.
    ASSERT_EQ(groups.dp.world_rank_of(0) % 4, ctx.rank % 4);
    ASSERT_EQ(groups.dp.world_rank_of(1) % 4, ctx.rank % 4);
  });
}

TEST(HybridGroups, RejectsIndivisibleWorld) {
  EXPECT_THROW(oc::run_cluster(6,
                               [](oc::Context& ctx) {
                                 (void)ort::make_hybrid_groups(ctx.world, 4);
                               }),
               optimus::util::CheckError);
}

TEST(HybridGroups, GradientAveragingMatchesMean) {
  oc::run_cluster(4, [](oc::Context& ctx) {
    auto groups = ort::make_hybrid_groups(ctx.world, /*tp_size=*/2);
    DTensor g = DTensor::full(Shape{3}, static_cast<double>(groups.replica + 1));
    std::vector<DTensor*> grads{&g};
    ort::allreduce_gradients(groups.dp, grads);
    // Replicas carried 1 and 2 → mean 1.5 everywhere.
    for (int i = 0; i < 3; ++i) ASSERT_DOUBLE_EQ(g[i], 1.5);
  });
}

namespace {

om::TransformerConfig hybrid_config(ot::index_t batch) {
  om::TransformerConfig cfg;
  cfg.batch = batch;
  cfg.seq_len = 4;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 2;
  cfg.seed = 3030;
  return cfg;
}

}  // namespace

TEST(HybridTraining, TwoReplicasEqualOneMeshOnFullBatch) {
  // Reference: a single q=2 Optimus mesh trains on the full batch of 8.
  // Hybrid: 2 replicas × q=2 mesh (8 ranks), each replica on half the batch,
  // gradients averaged across dp. Both take 3 SGD steps; the final parameter
  // shards must match to fp64 rounding. (Label masking is uniform across the
  // halves, so the mean-of-means equals the full mean.)
  const auto full_cfg = hybrid_config(8);
  const auto half_cfg = hybrid_config(4);
  ort::RandomLmWorkload workload(full_cfg.batch, full_cfg.seq_len, full_cfg.vocab, 64);
  std::vector<ort::LmBatch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(workload.next());
  const double lr = 0.02;

  // Reference run.
  DTensor ref_qkv, ref_emb;
  std::mutex mu;
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<double> engine(full_cfg, mesh);
    ort::Sgd<double> opt;
    for (const auto& batch : batches) {
      engine.forward(batch.tokens);
      (void)engine.lm_loss(batch.labels);
      engine.zero_grads();
      engine.backward_lm();
      opt.step(engine.parameters(), engine.gradients(), lr);
    }
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      ref_qkv = engine.layer(0).qkv_w.clone();
      ref_emb = engine.embedding_block().clone();
    }
  });

  // Hybrid run: replica r takes batch rows [4r, 4r+4).
  DTensor hyb_qkv, hyb_emb;
  oc::run_cluster(8, [&](oc::Context& ctx) {
    auto groups = ort::make_hybrid_groups(ctx.world, /*tp_size=*/4);
    optimus::mesh::Mesh2D mesh(groups.tp);
    optimus::core::OptimusTransformer<double> engine(half_cfg, mesh);
    ort::Sgd<double> opt;
    for (const auto& batch : batches) {
      ITensor tokens =
          batch.tokens.row_range(groups.replica * 4, groups.replica * 4 + 4).clone();
      ITensor labels =
          batch.labels.row_range(groups.replica * 4, groups.replica * 4 + 4).clone();
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.zero_grads();
      engine.backward_lm();
      ort::allreduce_gradients(groups.dp, engine.gradients());
      opt.step(engine.parameters(), engine.gradients(), lr);
    }
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      hyb_qkv = engine.layer(0).qkv_w.clone();
      hyb_emb = engine.embedding_block().clone();
    }
  });

  // The q=2 block layouts are identical (both meshes have q=2); compare
  // rank-0 shards directly.
  EXPECT_LT(ops::max_abs_diff(ref_qkv, hyb_qkv), 1e-12);
  EXPECT_LT(ops::max_abs_diff(ref_emb, hyb_emb), 1e-12);
}

TEST(HybridTraining, WorksWithMegatronToo) {
  // 2 replicas × 2-way Megatron on a world of 4.
  const auto full_cfg = hybrid_config(8);
  const auto half_cfg = hybrid_config(4);
  ort::RandomLmWorkload workload(full_cfg.batch, full_cfg.seq_len, full_cfg.vocab, 65);
  const auto batch = workload.next();
  const double lr = 0.02;

  DTensor ref_qkv;
  std::mutex mu;
  oc::run_cluster(2, [&](oc::Context& ctx) {
    optimus::megatron::MegatronTransformer<double> engine(full_cfg, ctx.world);
    ort::Sgd<double> opt;
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.zero_grads();
    engine.backward_lm();
    opt.step(engine.parameters(), engine.gradients(), lr);
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      ref_qkv = engine.layer(0).qkv_w.clone();
    }
  });

  DTensor hyb_qkv;
  oc::run_cluster(4, [&](oc::Context& ctx) {
    auto groups = ort::make_hybrid_groups(ctx.world, /*tp_size=*/2);
    optimus::megatron::MegatronTransformer<double> engine(half_cfg, groups.tp);
    ort::Sgd<double> opt;
    ITensor tokens =
        batch.tokens.row_range(groups.replica * 4, groups.replica * 4 + 4).clone();
    ITensor labels =
        batch.labels.row_range(groups.replica * 4, groups.replica * 4 + 4).clone();
    engine.forward(tokens);
    (void)engine.lm_loss(labels);
    engine.zero_grads();
    engine.backward_lm();
    ort::allreduce_gradients(groups.dp, engine.gradients());
    opt.step(engine.parameters(), engine.gradients(), lr);
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      hyb_qkv = engine.layer(0).qkv_w.clone();
    }
  });
  EXPECT_LT(ops::max_abs_diff(ref_qkv, hyb_qkv), 1e-12);
}
