// Equivalence tests for the Optimus 2D engine against the serial oracle:
// per-device activation blocks, losses, input gradients, every weight-block
// gradient, the row-0-hosted slice gradients, both loss branches, and the
// §3.2.3 buffer machinery — across mesh sides q ∈ {1, 2, 3}.

#include <gtest/gtest.h>

#include <mutex>

#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "mesh/mesh.hpp"
#include "model/serial_model.hpp"
#include "tensor/distribution.hpp"
#include "test_helpers.hpp"

namespace oc = optimus::comm;
namespace ocore = optimus::core;
namespace om = optimus::model;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ocore::OptimusTransformer;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;

namespace {

om::TransformerConfig config_for_q(int q) {
  om::TransformerConfig cfg;
  if (q == 3) {
    cfg.batch = 3;
    cfg.seq_len = 4;
    cfg.hidden = 18;
    cfg.heads = 3;
    cfg.vocab = 18;
    cfg.layers = 2;
  } else {
    cfg.batch = 2;
    cfg.seq_len = 4;
    cfg.hidden = 16;
    cfg.heads = 4;
    cfg.vocab = 16;
    cfg.layers = 2;
  }
  cfg.num_classes = 2;
  cfg.seed = 555;
  return cfg;
}

ITensor make_tokens(const om::TransformerConfig& cfg, std::uint64_t seed) {
  optimus::util::Rng rng(seed);
  ITensor t(Shape{cfg.batch, cfg.seq_len});
  for (ot::index_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<std::int32_t>(rng.uniform_index(cfg.vocab));
  }
  return t;
}

ITensor make_labels(const ITensor& tokens, const om::TransformerConfig& cfg) {
  ITensor labels(tokens.shape());
  for (ot::index_t b = 0; b < cfg.batch; ++b) {
    for (ot::index_t t = 0; t < cfg.seq_len; ++t) {
      labels.at(b, t) = t + 1 < cfg.seq_len ? tokens.at(b, t + 1) : -1;
    }
  }
  return labels;
}

/// Column-range slice helper for hosted parameter comparisons.
DTensor slice_1d(const DTensor& v, ot::index_t c0, ot::index_t c1) {
  DTensor out(Shape{c1 - c0});
  for (ot::index_t i = c0; i < c1; ++i) out[i - c0] = v[i];
  return out;
}

DTensor col_slice(const DTensor& m, ot::index_t c0, ot::index_t c1) {
  DTensor out(Shape{m.size(0), c1 - c0});
  for (ot::index_t r = 0; r < m.size(0); ++r) {
    for (ot::index_t c = c0; c < c1; ++c) out.at(r, c - c0) = m.at(r, c);
  }
  return out;
}

struct OptimusCase {
  int q;
  bool checkpoint;
  ocore::BufferMode buffers;
};

class OptimusSweep : public ::testing::TestWithParam<OptimusCase> {};

}  // namespace

TEST_P(OptimusSweep, MatchesSerialOracleEndToEnd) {
  const OptimusCase tc = GetParam();
  const int q = tc.q;
  const auto cfg = config_for_q(q);
  ITensor tokens = make_tokens(cfg, 1);
  ITensor labels = make_labels(tokens, cfg);

  om::SerialTransformer<double> oracle(cfg);
  DTensor hidden_ref = oracle.forward(tokens).clone();
  const double loss_ref = oracle.lm_loss(labels);
  oracle.zero_grads();
  oracle.backward_lm();
  DTensor dx0_ref = oracle.input_grad().clone();

  const ot::index_t h = cfg.hidden;
  const ot::index_t f = cfg.ffn_hidden();
  const ot::index_t hq = h / q;
  const ot::index_t fq = f / q;
  std::mutex mu;
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    ocore::OptimusOptions opts;
    opts.checkpoint = tc.checkpoint;
    opts.buffers = tc.buffers;
    OptimusTransformer<double> engine(cfg, mesh, opts);

    const DTensor& hidden = engine.forward(tokens);
    const double loss = engine.lm_loss(labels);
    engine.zero_grads();
    engine.backward_lm();

    const int i = mesh.row();
    const int j = mesh.col();
    std::lock_guard<std::mutex> lock(mu);
    // Per-device block of the final hidden state.
    DTensor hidden_block = ot::matrix_block(hidden_ref, q, i, j);
    ASSERT_LT(ops::max_abs_diff(hidden, hidden_block), 1e-10)
        << "hidden block (" << i << "," << j << ")";
    ASSERT_NEAR(loss, loss_ref, 1e-10);
    ASSERT_LT(ops::max_abs_diff(engine.input_grad(), ot::matrix_block(dx0_ref, q, i, j)),
              1e-9);

    // Fully-distributed weight-block gradients (eqs. 1–3).
    for (ot::index_t l = 0; l < cfg.layers; ++l) {
      auto& ref = oracle.layer_grad(l);
      auto& got = engine.layer_grad(l);
      ASSERT_LT(ops::max_abs_diff(got.qkv_w, ot::matrix_block(ref.qkv_w, q, i, j)), 1e-9);
      ASSERT_LT(ops::max_abs_diff(got.proj_w, ot::matrix_block(ref.proj_w, q, i, j)), 1e-9);
      ASSERT_LT(ops::max_abs_diff(got.fc1_w, ot::matrix_block(ref.fc1_w, q, i, j)), 1e-9);
      ASSERT_LT(ops::max_abs_diff(got.fc2_w, ot::matrix_block(ref.fc2_w, q, i, j)), 1e-9);
      if (i == 0) {
        // Row-0-hosted slice gradients (Fig. 5b reductions).
        ASSERT_LT(ops::max_abs_diff(got.ln1_g, slice_1d(ref.ln1_g, j * hq, (j + 1) * hq)),
                  1e-9);
        ASSERT_LT(ops::max_abs_diff(got.ln2_b, slice_1d(ref.ln2_b, j * hq, (j + 1) * hq)),
                  1e-9);
        ASSERT_LT(ops::max_abs_diff(got.qkv_b,
                                    slice_1d(ref.qkv_b, j * 3 * hq, (j + 1) * 3 * hq)),
                  1e-9);
        ASSERT_LT(ops::max_abs_diff(got.proj_b, slice_1d(ref.proj_b, j * hq, (j + 1) * hq)),
                  1e-9);
        ASSERT_LT(ops::max_abs_diff(got.fc1_b, slice_1d(ref.fc1_b, j * fq, (j + 1) * fq)),
                  1e-9);
        ASSERT_LT(ops::max_abs_diff(got.fc2_b, slice_1d(ref.fc2_b, j * hq, (j + 1) * hq)),
                  1e-9);
      }
    }
    // 2D embedding gradient block (Algorithm 3 with local one-hot scatters).
    ASSERT_LT(ops::max_abs_diff(engine.embedding_block_grad(),
                                ot::matrix_block(oracle.embedding_grad(), q, i, j)),
              1e-9);
    if (i == 0) {
      auto grads = oracle.gradients();
      const DTensor& dpos_ref = *grads[1];  // pos_embedding grad
      ASSERT_LT(ops::max_abs_diff(engine.pos_embedding_slice_grad(),
                                  col_slice(dpos_ref, j * hq, (j + 1) * hq)),
                1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    MeshSides, OptimusSweep,
    ::testing::Values(OptimusCase{1, true, ocore::BufferMode::kPooled},
                      OptimusCase{2, true, ocore::BufferMode::kPooled},
                      OptimusCase{2, true, ocore::BufferMode::kHeap},
                      OptimusCase{2, false, ocore::BufferMode::kHeap},
                      OptimusCase{3, true, ocore::BufferMode::kPooled}));

TEST(Optimus, ClsBranchMatchesSerial) {
  const int q = 2;
  const auto cfg = config_for_q(q);
  ITensor tokens = make_tokens(cfg, 2);
  ITensor labels = ITensor::from_vector(Shape{cfg.batch}, {1, 0});

  om::SerialTransformer<double> oracle(cfg);
  oracle.forward(tokens);
  const double loss_ref = oracle.cls_loss(labels);
  oracle.zero_grads();
  oracle.backward_cls();
  DTensor dx0_ref = oracle.input_grad().clone();
  auto ref_grads = oracle.gradients();
  const DTensor& dcls_w_ref = *ref_grads[ref_grads.size() - 2];

  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    OptimusTransformer<double> engine(cfg, mesh);
    engine.forward(tokens);
    const double loss = engine.cls_loss(labels);
    engine.zero_grads();
    engine.backward_cls();
    ASSERT_NEAR(loss, loss_ref, 1e-10);
    ASSERT_LT(ops::max_abs_diff(engine.input_grad(),
                                ot::matrix_block(dx0_ref, q, mesh.row(), mesh.col())),
              1e-9);
    if (mesh.row() == 0) {
      const ot::index_t hq = cfg.hidden / q;
      DTensor expected =
          dcls_w_ref.row_range(mesh.col() * hq, (mesh.col() + 1) * hq).clone();
      ASSERT_LT(ops::max_abs_diff(engine.cls_w_slice_grad(), expected), 1e-9);
    }
  });
}

TEST(Optimus, LmLogitsBlockMatchesSerial) {
  const int q = 2;
  const auto cfg = config_for_q(q);
  ITensor tokens = make_tokens(cfg, 3);
  om::SerialTransformer<double> oracle(cfg);
  oracle.forward(tokens);
  DTensor logits_ref = oracle.lm_logits();

  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    OptimusTransformer<double> engine(cfg, mesh);
    engine.forward(tokens);
    DTensor block = engine.lm_logits_block();
    ASSERT_LT(
        ops::max_abs_diff(block, ot::matrix_block(logits_ref, q, mesh.row(), mesh.col())),
        1e-10);
  });
}

TEST(Optimus, ArenasFullyReleasedBetweenSteps) {
  const int q = 2;
  const auto cfg = config_for_q(q);
  ITensor tokens = make_tokens(cfg, 4);
  ITensor labels = make_labels(tokens, cfg);
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    OptimusTransformer<double> engine(cfg, mesh);
    for (int step = 0; step < 3; ++step) {
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.zero_grads();
      engine.backward_lm();
    }
    // High-water marks must exist but capacities must never be exceeded
    // (Arena throws on exhaustion, so reaching here proves sizing).
    ASSERT_GT(engine.workspace_high_water(), 0u);
    ASSERT_GT(engine.forward_high_water(), 0u);
    ASSERT_GT(engine.backward_high_water(), 0u);
  });
}

TEST(Optimus, PooledBuffersCutAllocationTraffic) {
  // §3.2.3: the arena scheme removes per-op allocation. Compare allocation
  // counts of a training step under pooled vs heap buffers.
  const int q = 2;
  const auto cfg = config_for_q(q);
  ITensor tokens = make_tokens(cfg, 5);
  ITensor labels = make_labels(tokens, cfg);
  std::uint64_t allocs_pooled = 0, allocs_heap = 0;
  for (auto mode : {ocore::BufferMode::kPooled, ocore::BufferMode::kHeap}) {
    auto report = oc::run_cluster(q * q, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      ocore::OptimusOptions opts;
      opts.buffers = mode;
      OptimusTransformer<double> engine(cfg, mesh, opts);
      ctx.device.reset_alloc_count();
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.backward_lm();
    });
    if (mode == ocore::BufferMode::kPooled) {
      allocs_pooled = report.ranks[0].alloc_count;
    } else {
      allocs_heap = report.ranks[0].alloc_count;
    }
  }
  EXPECT_LT(allocs_pooled * 2, allocs_heap)
      << "pooled " << allocs_pooled << " vs heap " << allocs_heap;
}

TEST(Optimus, CheckpointingBoundsActivationMemory) {
  // With checkpointing, per-device activation memory is one layer deep; the
  // peak must grow far slower than layer count.
  auto peak_for_layers = [&](ot::index_t layers) {
    auto cfg = config_for_q(2);
    cfg.layers = layers;
    ITensor tokens = make_tokens(cfg, 6);
    ITensor labels = make_labels(tokens, cfg);
    auto report = oc::run_cluster(4, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      OptimusTransformer<double> engine(cfg, mesh);
      engine.forward(tokens);
      (void)engine.lm_loss(labels);
      engine.backward_lm();
    });
    return report.ranks[0].peak_bytes;
  };
  const auto peak2 = peak_for_layers(2);
  const auto peak8 = peak_for_layers(8);
  // 4× the layers; parameters grow 4× but activations must not. Allow the
  // parameter growth plus one layer of slack.
  EXPECT_LT(static_cast<double>(peak8), 4.2 * static_cast<double>(peak2));
}

TEST(Optimus, DeterministicAcrossRuns) {
  const int q = 2;
  const auto cfg = config_for_q(q);
  ITensor tokens = make_tokens(cfg, 7);
  ITensor labels = make_labels(tokens, cfg);
  double losses[2];
  DTensor grads[2];
  for (int run = 0; run < 2; ++run) {
    std::mutex mu;
    oc::run_cluster(q * q, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      OptimusTransformer<double> engine(cfg, mesh);
      engine.forward(tokens);
      const double loss = engine.lm_loss(labels);
      engine.zero_grads();
      engine.backward_lm();
      if (ctx.rank == 0) {
        std::lock_guard<std::mutex> lock(mu);
        losses[run] = loss;
        grads[run] = engine.layer_grad(0).qkv_w.clone();
      }
    });
  }
  EXPECT_EQ(losses[0], losses[1]);
  EXPECT_EQ(ops::max_abs_diff(grads[0], grads[1]), 0.0);
}

TEST(Optimus, TrainingStepReducesLoss) {
  const int q = 2;
  const auto cfg = config_for_q(q);
  ITensor tokens = make_tokens(cfg, 8);
  ITensor labels = make_labels(tokens, cfg);
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    OptimusTransformer<float> engine(cfg, mesh);
    engine.forward(tokens);
    const float loss0 = engine.lm_loss(labels);
    engine.zero_grads();
    engine.backward_lm();
    auto params = engine.parameters();
    auto grads = engine.gradients();
    for (std::size_t i = 0; i < params.size(); ++i) ops::axpy_(*params[i], -0.05f, *grads[i]);
    engine.forward(tokens);
    const float loss1 = engine.lm_loss(labels);
    ASSERT_LT(loss1, loss0);
  });
}

TEST(Optimus, ActivationsAreFullyDistributed) {
  // The core memory claim: per-device activation footprint shrinks as 1/p.
  // Measure the peak beyond parameters for q=1 vs q=2 on the same model.
  auto peak_for_q = [&](int q) {
    auto cfg = config_for_q(2);  // divisible by both 1 and 2
    cfg.layers = 1;
    ITensor tokens = make_tokens(cfg, 9);
    auto report = oc::run_cluster(q * q, [&](oc::Context& ctx) {
      optimus::mesh::Mesh2D mesh(ctx.world);
      OptimusTransformer<float> engine(cfg, mesh);
      engine.forward(tokens);
    });
    return report.max_peak_bytes();
  };
  // q=2 devices hold 1/4 of parameters and 1/4 of activations: peak should
  // drop by roughly 4 (loosely bounded here).
  EXPECT_LT(2.5 * static_cast<double>(peak_for_q(2)), static_cast<double>(peak_for_q(1)));
}
