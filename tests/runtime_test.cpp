// Tests for the training runtime: optimizers on analytic problems, LR
// schedules, gradient clipping, workload generators, and cross-engine
// training equivalence (serial vs Megatron vs Optimus stepping in lockstep).

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <sstream>

#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "model/serial_model.hpp"
#include "runtime/checkpoint_io.hpp"
#include "runtime/data.hpp"
#include "runtime/lr_schedule.hpp"
#include "runtime/optimizer.hpp"
#include "runtime/trainer.hpp"
#include "test_helpers.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace ort = optimus::runtime;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ot::DTensor;
using ot::ITensor;
using ot::Shape;
using ot::Tensor;

TEST(Sgd, ConvergesOnQuadratic) {
  // f(x) = ½‖x − target‖² ⇒ grad = x − target.
  DTensor x = DTensor::zeros(Shape{4});
  DTensor target = DTensor::from_vector(Shape{4}, {1, -2, 3, 0.5});
  DTensor g(Shape{4});
  ort::Sgd<double> opt;
  for (int i = 0; i < 200; ++i) {
    for (int k = 0; k < 4; ++k) g[k] = x[k] - target[k];
    opt.step({&x}, {&g}, 0.1);
  }
  EXPECT_LT(ops::max_abs_diff(x, target), 1e-6);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  auto run = [](double momentum) {
    DTensor x = DTensor::full(Shape{1}, 10.0);
    DTensor g(Shape{1});
    ort::Sgd<double> opt({momentum, 0.0});
    for (int i = 0; i < 20; ++i) {
      g[0] = 0.05 * x[0];  // shallow quadratic
      opt.step({&x}, {&g}, 0.5);
    }
    return std::abs(x[0]);
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Sgd, WeightDecayShrinksParameters) {
  DTensor x = DTensor::full(Shape{1}, 4.0);
  DTensor g = DTensor::zeros(Shape{1});
  ort::Sgd<double> opt({0.0, 0.1});
  for (int i = 0; i < 10; ++i) opt.step({&x}, {&g}, 1.0);
  EXPECT_NEAR(x[0], 4.0 * std::pow(0.9, 10), 1e-12);
}

TEST(Adam, ConvergesOnIllConditionedQuadratic) {
  DTensor x = DTensor::from_vector(Shape{2}, {5.0, 5.0});
  DTensor g(Shape{2});
  ort::Adam<double> opt;
  for (int i = 0; i < 2000; ++i) {
    g[0] = 100.0 * x[0];  // condition number 1e4
    g[1] = 0.01 * x[1];
    opt.step({&x}, {&g}, 0.05);
  }
  EXPECT_LT(std::abs(x[0]), 1e-3);
  EXPECT_LT(std::abs(x[1]), 1e-1);
  EXPECT_EQ(opt.steps_taken(), 2000);
}

TEST(Adam, FirstStepIsLrSized) {
  // With bias correction, step 1 moves by ≈ lr·sign(g).
  DTensor x = DTensor::zeros(Shape{1});
  DTensor g = DTensor::full(Shape{1}, 0.3);
  ort::Adam<double> opt;
  opt.step({&x}, {&g}, 0.01);
  EXPECT_NEAR(x[0], -0.01, 1e-6);
}

TEST(Optimizer, MismatchedListsThrow) {
  DTensor x(Shape{2}), g(Shape{3});
  ort::Sgd<double> opt;
  EXPECT_THROW(opt.step({&x}, {&g}, 0.1), optimus::util::CheckError);
}

TEST(ClipGradNorm, ScalesDownLargeGradients) {
  DTensor g = DTensor::from_vector(Shape{2}, {3.0, 4.0});  // norm 5
  const double norm = ort::clip_grad_norm<double>({&g}, 1.0);
  EXPECT_DOUBLE_EQ(norm, 5.0);
  EXPECT_NEAR(ops::l2_norm(g), 1.0, 1e-12);
  // Already-small gradients are untouched.
  DTensor g2 = DTensor::from_vector(Shape{2}, {0.3, 0.4});
  ort::clip_grad_norm<double>({&g2}, 1.0);
  EXPECT_DOUBLE_EQ(g2[0], 0.3);
}

TEST(ClipGradNorm, DistributedNormMatchesGathered) {
  // Shards of one gradient vector across 4 ranks must yield the same norm as
  // the concatenation.
  oc::run_cluster(4, [](oc::Context& ctx) {
    DTensor shard = DTensor::full(Shape{3}, static_cast<double>(ctx.rank + 1));
    const double norm = ort::global_grad_norm<double>({&shard}, &ctx.world);
    // ‖(1,1,1,2,2,2,3,3,3,4,4,4)‖ = sqrt(3·(1+4+9+16)) = sqrt(90).
    ASSERT_NEAR(norm, std::sqrt(90.0), 1e-12);
  });
}

TEST(LrSchedules, WarmupCosineShape) {
  ort::WarmupCosineLr lr(1.0, 10, 110, 0.1);
  EXPECT_NEAR(lr(0), 0.1, 1e-12);    // first warmup step
  EXPECT_NEAR(lr(9), 1.0, 1e-12);    // warmup end
  EXPECT_GT(lr(30), lr(80));         // decaying
  EXPECT_NEAR(lr(110), 0.1, 1e-9);   // floor
  EXPECT_NEAR(lr(1000), 0.1, 1e-9);  // flat after total
}

TEST(LrSchedules, StepDecay) {
  ort::StepDecayLr lr(1.0, 0.5, 10);
  EXPECT_DOUBLE_EQ(lr(0), 1.0);
  EXPECT_DOUBLE_EQ(lr(9), 1.0);
  EXPECT_DOUBLE_EQ(lr(10), 0.5);
  EXPECT_DOUBLE_EQ(lr(25), 0.25);
}

TEST(Workloads, RandomLmDeterministicAndLabelsShifted) {
  ort::RandomLmWorkload a(2, 5, 17, 99), b(2, 5, 17, 99);
  const auto ba = a.next();
  const auto bb = b.next();
  EXPECT_EQ(ba.tokens.to_vector(), bb.tokens.to_vector());
  for (int r = 0; r < 2; ++r) {
    for (int t = 0; t < 4; ++t) EXPECT_EQ(ba.labels.at(r, t), ba.tokens.at(r, t + 1));
    EXPECT_EQ(ba.labels.at(r, 4), -1);
  }
  for (ot::index_t i = 0; i < ba.tokens.numel(); ++i) {
    EXPECT_GE(ba.tokens[i], 0);
    EXPECT_LT(ba.tokens[i], 17);
  }
}

TEST(Workloads, PatternLmIsPredictable) {
  ort::PatternLmWorkload w(4, 8, 16, 5, 7);
  const auto batch = w.next();
  for (int r = 0; r < 4; ++r) {
    for (int t = 0; t + 1 < 8; ++t) {
      EXPECT_EQ((batch.tokens.at(r, t) + 1) % 5, batch.tokens.at(r, t + 1));
    }
  }
}

TEST(Workloads, ClsBandsAreSeparable) {
  ort::SyntheticClsWorkload w(64, 16, 20, 2, 1.0, 3);
  const auto batch = w.next();
  for (int r = 0; r < 64; ++r) {
    const int cls = batch.labels[r];
    for (int t = 0; t < 16; ++t) {
      EXPECT_GE(batch.tokens.at(r, t), cls * 10);
      EXPECT_LT(batch.tokens.at(r, t), (cls + 1) * 10);
    }
  }
}

TEST(CharCorpus, EncodeDecodeRoundTrip) {
  ort::CharCorpus corpus("hello world");
  EXPECT_EQ(corpus.vocab_size(), 8);  // ' ', d, e, h, l, o, r, w
  const std::string s = "low";
  std::vector<std::int32_t> toks;
  for (char c : s) toks.push_back(corpus.encode(c));
  EXPECT_EQ(corpus.decode(toks), s);
  EXPECT_THROW(corpus.encode('z'), optimus::util::CheckError);
}

TEST(CharCorpus, SampleLabelsAreNextChars) {
  ort::CharCorpus corpus(ort::CharCorpus::builtin_text());
  optimus::util::Rng rng(4);
  const auto batch = corpus.sample(3, 12, rng);
  // Every (token, label) pair must be an adjacent bigram of the corpus: check
  // by decoding and re-encoding a window.
  for (int r = 0; r < 3; ++r) {
    for (int t = 0; t + 1 < 12; ++t) {
      EXPECT_EQ(batch.labels.at(r, t), batch.tokens.at(r, t + 1));
    }
  }
}

TEST(Trainer, SerialModelLearnsPattern) {
  om::TransformerConfig cfg;
  cfg.batch = 8;
  cfg.seq_len = 8;
  cfg.hidden = 32;
  cfg.heads = 4;
  cfg.vocab = 8;
  cfg.layers = 2;
  cfg.seed = 7;
  om::SerialTransformer<float> model(cfg);
  ort::Adam<float> opt;
  ort::PatternLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 4, 11);
  ort::ConstantLr lr(3e-3);
  auto losses =
      ort::train_lm(model, opt, lr, [&] { return workload.next(); }, 120);
  // The pattern is fully predictable after its first period: loss must drop
  // far below chance (log 8 ≈ 2.08).
  EXPECT_GT(losses.front(), 1.5);
  EXPECT_LT(ort::tail_mean(losses, 10), 0.35);
}

TEST(Trainer, ClsBranchLearnsSeparableData) {
  om::TransformerConfig cfg;
  cfg.batch = 8;
  cfg.seq_len = 6;
  cfg.hidden = 16;
  cfg.heads = 2;
  cfg.vocab = 16;
  cfg.layers = 1;
  cfg.num_classes = 2;
  cfg.seed = 8;
  om::SerialTransformer<float> model(cfg);
  ort::Adam<float> opt;
  ort::SyntheticClsWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 2, 0.95, 12);
  ort::ConstantLr lr(3e-3);
  auto losses =
      ort::train_cls(model, opt, lr, [&] { return workload.next(); }, 150);
  EXPECT_LT(ort::tail_mean(losses, 10), 0.3);  // chance = log 2 ≈ 0.69
}

TEST(Trainer, GradientAccumulationEqualsFullBatch) {
  // Two micro-batches of b=2 accumulated must give the same gradients as the
  // concatenated b=4 batch (equal unmasked-label counts per micro-batch).
  om::TransformerConfig big;
  big.batch = 4;
  big.seq_len = 4;
  big.hidden = 16;
  big.heads = 4;
  big.vocab = 16;
  big.layers = 2;
  big.seed = 515;
  auto small = big;
  small.batch = 2;

  ort::RandomLmWorkload w(big.batch, big.seq_len, big.vocab, 99);
  const auto full = w.next();
  ort::LmBatch first{full.tokens.row_range(0, 2).clone(), full.labels.row_range(0, 2).clone()};
  ort::LmBatch second{full.tokens.row_range(2, 4).clone(),
                      full.labels.row_range(2, 4).clone()};

  om::SerialTransformer<double> full_model(big);
  full_model.forward(full.tokens);
  (void)full_model.lm_loss(full.labels);
  full_model.zero_grads();
  full_model.backward_lm();

  om::SerialTransformer<double> micro_model(small);
  const double mean_loss = ort::accumulate_lm_gradients(micro_model, {first, second});

  auto gf = full_model.gradients();
  auto gm = micro_model.gradients();
  for (std::size_t i = 0; i < gf.size(); ++i) {
    ASSERT_LT(ops::max_abs_diff(*gf[i], *gm[i]), 1e-12) << "gradient " << i;
  }
  // And the mean micro loss equals the full-batch loss.
  full_model.forward(full.tokens);
  ASSERT_NEAR(mean_loss, full_model.lm_loss(full.labels), 1e-12);
}

TEST(Trainer, GradientAccumulationWorksOnOptimusMesh) {
  om::TransformerConfig cfg;
  cfg.batch = 2;
  cfg.seq_len = 4;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 1;
  cfg.seed = 516;
  ort::RandomLmWorkload w(cfg.batch, cfg.seq_len, cfg.vocab, 100);
  const std::vector<ort::LmBatch> micros{w.next(), w.next(), w.next()};
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<double> engine(cfg, mesh);
    const double loss = ort::accumulate_lm_gradients(engine, micros);
    ASSERT_GT(loss, 0.0);
    // Stepping on the accumulated gradient reduces the mean loss.
    ort::Sgd<double> opt;
    opt.step(engine.parameters(), engine.gradients(), 0.05);
    double after = 0;
    for (const auto& b : micros) {
      engine.forward(b.tokens);
      after += engine.lm_loss(b.labels);
    }
    ASSERT_LT(after / micros.size(), loss);
  });
}

TEST(Trainer, AllThreeEnginesTrainIdentically) {
  // The flagship integration test: serial, Megatron(p=4) and Optimus(q=2)
  // run the same 5 Adam steps on the same batches; the loss traces must agree
  // to fp64 tolerance at every step.
  om::TransformerConfig cfg;
  cfg.batch = 4;
  cfg.seq_len = 4;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 2;
  cfg.seed = 2024;
  const int steps = 5;

  auto make_batches = [&] {
    ort::RandomLmWorkload w(cfg.batch, cfg.seq_len, cfg.vocab, 31);
    std::vector<ort::LmBatch> out;
    for (int i = 0; i < steps; ++i) out.push_back(w.next());
    return out;
  };
  const auto batches = make_batches();

  std::vector<double> serial_losses;
  {
    om::SerialTransformer<double> model(cfg);
    ort::Adam<double> opt;
    int i = 0;
    ort::ConstantLr lr(1e-3);
    for (const auto& batch : batches) {
      serial_losses.push_back(ort::lm_step(model, opt, batch, lr(i++)));
    }
  }

  std::vector<double> megatron_losses(steps), optimus_losses(steps);
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::megatron::MegatronTransformer<double> engine(cfg, ctx.world);
    ort::Adam<double> opt;
    for (int i = 0; i < steps; ++i) {
      const double loss = ort::lm_step(engine, opt, batches[i], 1e-3);
      if (ctx.rank == 0) megatron_losses[i] = loss;
    }
  });
  oc::run_cluster(4, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<double> engine(cfg, mesh);
    ort::Adam<double> opt;
    for (int i = 0; i < steps; ++i) {
      const double loss = ort::lm_step(engine, opt, batches[i], 1e-3);
      if (ctx.rank == 0) optimus_losses[i] = loss;
    }
  });

  for (int i = 0; i < steps; ++i) {
    EXPECT_NEAR(megatron_losses[i], serial_losses[i], 1e-8) << "step " << i;
    EXPECT_NEAR(optimus_losses[i], serial_losses[i], 1e-8) << "step " << i;
  }
}

TEST(CheckpointIo, RandomTensorsRoundTripBitwise) {
  // Property: save → load reproduces every byte, including signed zeros,
  // infinities, NaN payloads and denormals — a checkpoint must never launder
  // the values it stores.
  const std::uint64_t seed = optimus::testing::test_seed(2718);
  OPTIMUS_SEED_TRACE(seed);
  optimus::util::Rng rng(seed);
  const double specials[] = {0.0, -0.0, std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::denorm_min()};
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<DTensor> tensors;
    const int count = 1 + static_cast<int>(rng.uniform_index(5));
    for (int t = 0; t < count; ++t) {
      const int rank = 1 + static_cast<int>(rng.uniform_index(3));
      Shape shape;
      switch (rank) {
        case 1: shape = Shape{1 + static_cast<ot::index_t>(rng.uniform_index(6))}; break;
        case 2:
          shape = Shape{1 + static_cast<ot::index_t>(rng.uniform_index(6)),
                        1 + static_cast<ot::index_t>(rng.uniform_index(6))};
          break;
        default:
          shape = Shape{1 + static_cast<ot::index_t>(rng.uniform_index(4)),
                        1 + static_cast<ot::index_t>(rng.uniform_index(4)),
                        1 + static_cast<ot::index_t>(rng.uniform_index(4))};
      }
      DTensor tensor(shape);
      for (ot::index_t i = 0; i < tensor.numel(); ++i) {
        tensor[i] = rng.uniform_index(8) == 0 ? specials[rng.uniform_index(6)]
                                              : rng.uniform(-1e6, 1e6);
      }
      tensors.push_back(tensor);
    }
    std::vector<DTensor*> saved;
    for (auto& t : tensors) saved.push_back(&t);

    std::stringstream buf;
    ort::save_tensors(buf, saved);

    std::vector<DTensor> reloaded;
    for (const auto& t : tensors) reloaded.push_back(DTensor::zeros(t.shape()));
    std::vector<DTensor*> loaded;
    for (auto& t : reloaded) loaded.push_back(&t);
    ort::load_tensors(buf, loaded);

    for (std::size_t t = 0; t < tensors.size(); ++t) {
      ASSERT_EQ(tensors[t].shape(), reloaded[t].shape());
      ASSERT_EQ(std::memcmp(tensors[t].data(), reloaded[t].data(),
                            sizeof(double) * static_cast<std::size_t>(tensors[t].numel())),
                0)
          << "iteration " << iter << ", tensor " << t << " changed across the round trip";
    }
  }
}

TEST(CheckpointIo, LoadIntoMismatchedShapesThrows) {
  DTensor a = DTensor::zeros(Shape{2, 3});
  std::vector<DTensor*> saved{&a};
  std::stringstream buf;
  ort::save_tensors(buf, saved);
  DTensor wrong = DTensor::zeros(Shape{3, 2});
  std::vector<DTensor*> loaded{&wrong};
  EXPECT_THROW(ort::load_tensors(buf, loaded), optimus::util::CheckError);
}
