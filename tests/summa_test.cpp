// Tests for the three SUMMA product forms: distributed results must equal the
// serial product of the gathered global matrices, across mesh sides 1..4,
// with and without the pre-allocated workspace, and the differentiation
// closure (eqs. 1–3 of the paper) must hold end-to-end.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <mutex>
#include <vector>

#include "comm/cluster.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/validation.hpp"
#include "summa/summa.hpp"
#include "tensor/distribution.hpp"
#include "tensor/ops.hpp"
#include "test_helpers.hpp"

namespace oc = optimus::comm;
namespace om = optimus::mesh;
namespace os = optimus::summa;
namespace ot = optimus::tensor;
namespace ops = optimus::tensor::ops;
using ot::DTensor;
using ot::Shape;

namespace {

struct SummaCase {
  int q;
  ot::index_t m, k, n;  // global dims, all divisible by q
  bool use_workspace;
};

// Runs a distributed op on a q×q cluster where each device gets its block of
// the global inputs, then gathers every device's C block into a global
// result on the host for comparison.
template <typename DistributedOp>
DTensor run_summa_case(const SummaCase& c, const DTensor& A_global, const DTensor& B_global,
                       Shape c_global_shape, const DistributedOp& op) {
  DTensor C_global = DTensor::zeros(c_global_shape);
  std::mutex mu;
  oc::run_cluster(c.q * c.q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    DTensor A = ot::matrix_block(A_global, c.q, mesh.row(), mesh.col());
    DTensor B = ot::matrix_block(B_global, c.q, mesh.row(), mesh.col());
    DTensor C(Shape{c_global_shape[0] / c.q, c_global_shape[1] / c.q});
    C.zero();
    std::unique_ptr<ot::Arena> workspace;
    if (c.use_workspace) {
      workspace = std::make_unique<ot::Arena>(
          "ws", os::workspace_bytes(A.numel(), B.numel(), C.numel(), sizeof(double)));
    }
    op(mesh, A, B, C, workspace.get());
    std::lock_guard<std::mutex> lock(mu);
    ot::set_matrix_block(C_global, c.q, mesh.row(), mesh.col(), C);
  });
  return C_global;
}

class SummaSweep : public ::testing::TestWithParam<SummaCase> {};

}  // namespace

TEST_P(SummaSweep, AbMatchesSerialProduct) {
  const SummaCase c = GetParam();
  optimus::util::Rng rng(17);
  DTensor A = optimus::testing::random_dtensor(Shape{c.m, c.k}, rng);
  DTensor B = optimus::testing::random_dtensor(Shape{c.k, c.n}, rng);
  DTensor C = run_summa_case(
      c, A, B, Shape{c.m, c.n},
      [](om::Mesh2D& mesh, const DTensor& a, const DTensor& b, DTensor& out, ot::Arena* ws) {
        os::summa_ab(mesh, a, b, out, false, ws);
      });
  DTensor ref = ops::matmul(A, B);
  EXPECT_LT(ops::max_abs_diff(C, ref), 1e-11);
}

TEST_P(SummaSweep, AbtMatchesSerialProduct) {
  const SummaCase c = GetParam();
  optimus::util::Rng rng(18);
  // C[m, k] = A[m, n] · B[k, n]ᵀ — reuse (m, k, n) as (rows of A, rows of B, shared dim).
  DTensor A = optimus::testing::random_dtensor(Shape{c.m, c.n}, rng);
  DTensor B = optimus::testing::random_dtensor(Shape{c.k, c.n}, rng);
  DTensor C = run_summa_case(
      c, A, B, Shape{c.m, c.k},
      [](om::Mesh2D& mesh, const DTensor& a, const DTensor& b, DTensor& out, ot::Arena* ws) {
        os::summa_abt(mesh, a, b, out, false, ws);
      });
  DTensor ref = ops::matmul(A, B, ops::Trans::No, ops::Trans::Yes);
  EXPECT_LT(ops::max_abs_diff(C, ref), 1e-11);
}

TEST_P(SummaSweep, AtbMatchesSerialProduct) {
  const SummaCase c = GetParam();
  optimus::util::Rng rng(19);
  // C[n, k] = A[m, n]ᵀ · B[m, k].
  DTensor A = optimus::testing::random_dtensor(Shape{c.m, c.n}, rng);
  DTensor B = optimus::testing::random_dtensor(Shape{c.m, c.k}, rng);
  DTensor C = run_summa_case(
      c, A, B, Shape{c.n, c.k},
      [](om::Mesh2D& mesh, const DTensor& a, const DTensor& b, DTensor& out, ot::Arena* ws) {
        os::summa_atb(mesh, a, b, out, false, ws);
      });
  DTensor ref = ops::matmul(A, B, ops::Trans::Yes, ops::Trans::No);
  EXPECT_LT(ops::max_abs_diff(C, ref), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    MeshAndShapes, SummaSweep,
    ::testing::Values(SummaCase{1, 4, 6, 8, false}, SummaCase{2, 4, 6, 8, false},
                      SummaCase{2, 4, 6, 8, true}, SummaCase{3, 6, 9, 12, false},
                      SummaCase{3, 6, 9, 12, true}, SummaCase{4, 8, 12, 16, true},
                      SummaCase{2, 16, 8, 24, true}));

TEST(Summa, AccumulateAddsIntoExistingC) {
  const int q = 2;
  optimus::util::Rng rng(20);
  DTensor A = optimus::testing::random_dtensor(Shape{4, 6}, rng);
  DTensor B = optimus::testing::random_dtensor(Shape{6, 8}, rng);
  DTensor C_global = DTensor::zeros(Shape{4, 8});
  std::mutex mu;
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    DTensor a = ot::matrix_block(A, q, mesh.row(), mesh.col());
    DTensor b = ot::matrix_block(B, q, mesh.row(), mesh.col());
    DTensor c = DTensor::full(Shape{2, 4}, 1.0);
    os::summa_ab(mesh, a, b, c, /*accumulate=*/true);
    std::lock_guard<std::mutex> lock(mu);
    ot::set_matrix_block(C_global, q, mesh.row(), mesh.col(), c);
  });
  DTensor ref = ops::matmul(A, B);
  for (ot::index_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(C_global[i], ref[i] + 1.0, 1e-11);
}

TEST(Summa, DifferentiationClosureGradCheck) {
  // Forward C = A·B distributed; backward dA = dC·Bᵀ (Alg 2), dB = Aᵀ·dC
  // (Alg 3). The assembled gradients must match finite differences of the
  // scalar loss  L = Σ (A·B) ⊙ G  computed serially.
  const int q = 2;
  optimus::util::Rng rng(21);
  DTensor A = optimus::testing::random_dtensor(Shape{4, 6}, rng);
  DTensor B = optimus::testing::random_dtensor(Shape{6, 4}, rng);
  DTensor G = optimus::testing::random_dtensor(Shape{4, 4}, rng);

  DTensor dA_global = DTensor::zeros(A.shape());
  DTensor dB_global = DTensor::zeros(B.shape());
  std::mutex mu;
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    DTensor a = ot::matrix_block(A, q, mesh.row(), mesh.col());
    DTensor b = ot::matrix_block(B, q, mesh.row(), mesh.col());
    DTensor g = ot::matrix_block(G, q, mesh.row(), mesh.col());
    DTensor da(a.shape()), db(b.shape());
    da.zero();
    db.zero();
    os::summa_abt(mesh, g, b, da);  // dA = dC·Bᵀ
    os::summa_atb(mesh, a, g, db);  // dB = Aᵀ·dC
    std::lock_guard<std::mutex> lock(mu);
    ot::set_matrix_block(dA_global, q, mesh.row(), mesh.col(), da);
    ot::set_matrix_block(dB_global, q, mesh.row(), mesh.col(), db);
  });

  auto loss = [&] {
    DTensor C = ops::matmul(A, B);
    double acc = 0;
    for (ot::index_t i = 0; i < C.numel(); ++i) acc += C[i] * G[i];
    return acc;
  };
  optimus::testing::check_gradient(A, loss, dA_global, 1e-6, 1e-7);
  optimus::testing::check_gradient(B, loss, dB_global, 1e-6, 1e-7);
}

TEST(Summa, WorkspaceIsFullyReleasedAfterCall) {
  const int q = 2;
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    DTensor a = DTensor::zeros(Shape{2, 3});
    DTensor b = DTensor::zeros(Shape{3, 4});
    DTensor c = DTensor::zeros(Shape{2, 4});
    ot::Arena ws("ws", os::workspace_bytes(a.numel(), b.numel(), c.numel(), sizeof(double)));
    os::summa_ab(mesh, a, b, c, false, &ws);
    ASSERT_EQ(ws.used(), 0u);
    ASSERT_GT(ws.high_water(), 0u);
    // Repeated calls reuse the same slab without growth.
    os::summa_ab(mesh, a, b, c, false, &ws);
    os::summa_abt(mesh, c, b, a, false, &ws);
    ASSERT_EQ(ws.used(), 0u);
  });
}

TEST(Summa, CommunicationVolumeMatchesAlgorithm1Accounting) {
  // Per device, summa_ab moves q broadcasts of A blocks in rows and q of B
  // blocks in columns; weighted units must equal log2(q)·q·(|A|+|B|)/... —
  // checked directly against the stats counters.
  const int q = 2;
  auto report = oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    DTensor a = DTensor::zeros(Shape{4, 6});
    DTensor b = DTensor::zeros(Shape{6, 8});
    DTensor c = DTensor::zeros(Shape{4, 8});
    os::summa_ab(mesh, a, b, c);
  });
  const auto& s = report.ranks[0].stats;
  // q row-broadcasts of 24 elements + q column-broadcasts of 48 elements.
  EXPECT_EQ(s.broadcast.calls, static_cast<std::uint64_t>(2 * q));
  EXPECT_EQ(s.broadcast.elems, static_cast<std::uint64_t>(q * 24 + q * 48));
  // log2(2) = 1 per broadcast in a group of 2.
  EXPECT_DOUBLE_EQ(s.broadcast.weighted, q * 24.0 + q * 48.0);
  EXPECT_EQ(s.reduce.calls, 0u);
}

TEST(Summa, NanPoisonedWorkspaceIsHarmless) {
  // Regression for beta semantics in the kernel layer: with accumulate=false
  // the first SUMMA step runs beta == 0, which must *store* into C and into
  // any workspace-carved temporaries — never scale them. Poison the whole
  // arena slab with NaN first; any read-before-write of workspace memory (or
  // a beta path that multiplies stale C) surfaces as NaN in the result.
  const int q = 2;
  const ot::index_t m = 8, k = 12, n = 16;
  optimus::util::Rng rng(29);
  DTensor A_global = optimus::testing::random_dtensor(Shape{m, k}, rng);
  DTensor B_global = optimus::testing::random_dtensor(Shape{k, n}, rng);
  DTensor C_global = DTensor::zeros(Shape{m, n});
  std::mutex mu;
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    DTensor A = ot::matrix_block(A_global, q, mesh.row(), mesh.col());
    DTensor B = ot::matrix_block(B_global, q, mesh.row(), mesh.col());
    const std::uint64_t cap =
        os::workspace_bytes(A.numel(), B.numel(), (m / q) * (n / q), sizeof(double));
    ot::Arena ws("poisoned", cap);
    {
      // Fill the entire slab with NaN, then reset so SUMMA re-carves it.
      DTensor poison = ws.alloc<double>(Shape{static_cast<ot::index_t>(cap / sizeof(double))});
      const double nan = std::numeric_limits<double>::quiet_NaN();
      for (ot::index_t i = 0; i < poison.numel(); ++i) poison[i] = nan;
      ws.reset();
    }
    // C itself is also NaN-poisoned: accumulate=false must overwrite it.
    DTensor C(Shape{m / q, n / q});
    for (ot::index_t i = 0; i < C.numel(); ++i) C[i] = std::numeric_limits<double>::quiet_NaN();
    os::summa_ab(mesh, A, B, C, /*accumulate=*/false, &ws);
    std::lock_guard<std::mutex> lock(mu);
    ot::set_matrix_block(C_global, q, mesh.row(), mesh.col(), C);
  });
  for (ot::index_t i = 0; i < C_global.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(C_global[i])) << "NaN leaked into C at " << i;
  }
  DTensor ref = ops::matmul(A_global, B_global);
  EXPECT_LT(ops::max_abs_diff(C_global, ref), 1e-11);
}

// ---------------------------------------------------------------------------
// Pipelined schedule: bitwise identity and the overlap clock model
// ---------------------------------------------------------------------------

namespace {

// Gathers the global C of one form under the given pipeline mode.
template <typename FormOp>
DTensor run_form(int q, const DTensor& A_global, const DTensor& B_global,
                 Shape c_global_shape, bool pipelined, bool accumulate, const FormOp& op) {
  DTensor C_global = DTensor::zeros(c_global_shape);
  std::mutex mu;
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    os::PipelineGuard guard(pipelined);
    om::Mesh2D mesh(ctx.world);
    DTensor A = ot::matrix_block(A_global, q, mesh.row(), mesh.col());
    DTensor B = ot::matrix_block(B_global, q, mesh.row(), mesh.col());
    DTensor C(Shape{c_global_shape[0] / q, c_global_shape[1] / q});
    // Deterministic nonzero C start so accumulate=true is exercised for real.
    for (ot::index_t i = 0; i < C.numel(); ++i) {
      C[i] = accumulate ? 0.125 * static_cast<double>(i + mesh.row() + mesh.col()) : 0.0;
    }
    ot::Arena ws("ws", os::workspace_bytes(A.numel(), B.numel(), C.numel(), sizeof(double)));
    op(mesh, A, B, C, accumulate, &ws);
    std::lock_guard<std::mutex> lock(mu);
    ot::set_matrix_block(C_global, q, mesh.row(), mesh.col(), C);
  });
  return C_global;
}

}  // namespace

TEST(SummaPipeline, AllFormsBitwiseIdenticalToBlocking) {
  // The pipelined schedule moves identical payloads from identical roots and
  // accumulates in the identical order — results must match to the bit
  // (0 ULPs), for every form, mesh side and accumulate mode.
  const auto ab = [](om::Mesh2D& m, const DTensor& a, const DTensor& b, DTensor& c,
                     bool acc, ot::Arena* ws) { os::summa_ab(m, a, b, c, acc, ws); };
  const auto abt = [](om::Mesh2D& m, const DTensor& a, const DTensor& b, DTensor& c,
                      bool acc, ot::Arena* ws) { os::summa_abt(m, a, b, c, acc, ws); };
  const auto atb = [](om::Mesh2D& m, const DTensor& a, const DTensor& b, DTensor& c,
                      bool acc, ot::Arena* ws) { os::summa_atb(m, a, b, c, acc, ws); };
  for (int q : {2, 3, 4}) {
    const ot::index_t m = 2 * q, k = 3 * q, n = 4 * q;
    optimus::util::Rng rng(60 + q);
    for (const bool accumulate : {false, true}) {
      {
        DTensor A = optimus::testing::random_dtensor(Shape{m, k}, rng);
        DTensor B = optimus::testing::random_dtensor(Shape{k, n}, rng);
        DTensor blocking = run_form(q, A, B, Shape{m, n}, false, accumulate, ab);
        DTensor pipelined = run_form(q, A, B, Shape{m, n}, true, accumulate, ab);
        for (ot::index_t i = 0; i < blocking.numel(); ++i) {
          ASSERT_EQ(pipelined[i], blocking[i]) << "ab q=" << q << " i=" << i;
        }
      }
      {
        DTensor A = optimus::testing::random_dtensor(Shape{m, n}, rng);
        DTensor B = optimus::testing::random_dtensor(Shape{k, n}, rng);
        DTensor blocking = run_form(q, A, B, Shape{m, k}, false, accumulate, abt);
        DTensor pipelined = run_form(q, A, B, Shape{m, k}, true, accumulate, abt);
        for (ot::index_t i = 0; i < blocking.numel(); ++i) {
          ASSERT_EQ(pipelined[i], blocking[i]) << "abt q=" << q << " i=" << i;
        }
      }
      {
        DTensor A = optimus::testing::random_dtensor(Shape{m, n}, rng);
        DTensor B = optimus::testing::random_dtensor(Shape{m, k}, rng);
        DTensor blocking = run_form(q, A, B, Shape{n, k}, false, accumulate, atb);
        DTensor pipelined = run_form(q, A, B, Shape{n, k}, true, accumulate, atb);
        for (ot::index_t i = 0; i < blocking.numel(); ++i) {
          ASSERT_EQ(pipelined[i], blocking[i]) << "atb q=" << q << " i=" << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// 2.5D (Tesseract) schedule: depth meshes, replica identity and the clock model
// ---------------------------------------------------------------------------

namespace {

/// Runs one form on a q×q×d mesh, asserts every depth replica of C is bitwise
/// identical to layer 0's, and gathers layer 0's blocks into the global C.
template <typename FormOp>
DTensor run_form_25d(int q, int d, const DTensor& A_global, const DTensor& B_global,
                     Shape c_global_shape, bool pipelined, bool accumulate,
                     const FormOp& op) {
  DTensor C_global = DTensor::zeros(c_global_shape);
  std::vector<DTensor> per_rank(static_cast<std::size_t>(q * q * d));
  std::mutex mu;
  oc::run_cluster(q * q * d, [&](oc::Context& ctx) {
    os::PipelineGuard guard(pipelined);
    om::Mesh2D mesh(ctx.world, d);
    DTensor A = ot::matrix_block(A_global, q, mesh.row(), mesh.col());
    DTensor B = ot::matrix_block(B_global, q, mesh.row(), mesh.col());
    DTensor C(Shape{c_global_shape[0] / q, c_global_shape[1] / q});
    // Same per-block seeding as run_form so the 2D run is directly comparable.
    for (ot::index_t i = 0; i < C.numel(); ++i) {
      C[i] = accumulate ? 0.125 * static_cast<double>(i + mesh.row() + mesh.col()) : 0.0;
    }
    ot::Arena ws("ws",
                 os::workspace_bytes(A.numel(), B.numel(), C.numel(), sizeof(double), d));
    op(mesh, A, B, C, accumulate, &ws);
    std::lock_guard<std::mutex> lock(mu);
    per_rank[static_cast<std::size_t>(ctx.rank)] = C.clone();
    if (mesh.depth_idx() == 0) {
      ot::set_matrix_block(C_global, q, mesh.row(), mesh.col(), C);
    }
  });
  // Replica discipline: after the final depth broadcast, every layer's C must
  // hold exactly the layer-0 bits (rank = z·q² + cell, depth-major).
  for (int z = 1; z < d; ++z) {
    for (int cell = 0; cell < q * q; ++cell) {
      const DTensor& ref = per_rank[static_cast<std::size_t>(cell)];
      const DTensor& rep = per_rank[static_cast<std::size_t>(z * q * q + cell)];
      EXPECT_EQ(ref.numel(), rep.numel());
      for (ot::index_t i = 0; i < ref.numel(); ++i) {
        EXPECT_EQ(rep[i], ref[i])
            << "depth replica diverged: layer " << z << " cell " << cell << " elem " << i;
      }
    }
  }
  return C_global;
}

struct Summa25dCase {
  int q, d;
  bool pipelined;
  bool accumulate;
};

class Summa25dSweep : public ::testing::TestWithParam<Summa25dCase> {};

}  // namespace

TEST_P(Summa25dSweep, AllFormsMatchSerialWithBitwiseDepthReplicas) {
  const auto [q, d, pipelined, accumulate] = GetParam();
  // Contraction dims must divide q·d: base every global dim on lcm-ish 2q·d·3.
  const ot::index_t m = static_cast<ot::index_t>(2 * q * d);
  const ot::index_t k = static_cast<ot::index_t>(3 * q * d);
  const ot::index_t n = static_cast<ot::index_t>(4 * q * d);
  optimus::util::Rng rng(70 + 8 * q + d);
  const auto ab = [](om::Mesh2D& mm, const DTensor& a, const DTensor& b, DTensor& c,
                     bool acc, ot::Arena* ws) { os::summa_ab(mm, a, b, c, acc, ws); };
  const auto abt = [](om::Mesh2D& mm, const DTensor& a, const DTensor& b, DTensor& c,
                      bool acc, ot::Arena* ws) { os::summa_abt(mm, a, b, c, acc, ws); };
  const auto atb = [](om::Mesh2D& mm, const DTensor& a, const DTensor& b, DTensor& c,
                      bool acc, ot::Arena* ws) { os::summa_atb(mm, a, b, c, acc, ws); };
  {
    DTensor A = optimus::testing::random_dtensor(Shape{m, k}, rng);
    DTensor B = optimus::testing::random_dtensor(Shape{k, n}, rng);
    DTensor got = run_form_25d(q, d, A, B, Shape{m, n}, pipelined, accumulate, ab);
    DTensor want = run_form(q, A, B, Shape{m, n}, pipelined, accumulate, ab);
    EXPECT_LT(ops::max_abs_diff(got, want), 1e-12) << "ab vs 2D";
    if (!accumulate) {
      EXPECT_LT(ops::max_abs_diff(got, ops::matmul(A, B)), 1e-11) << "ab vs serial";
    }
  }
  {
    DTensor A = optimus::testing::random_dtensor(Shape{m, n}, rng);
    DTensor B = optimus::testing::random_dtensor(Shape{k, n}, rng);
    DTensor got = run_form_25d(q, d, A, B, Shape{m, k}, pipelined, accumulate, abt);
    DTensor want = run_form(q, A, B, Shape{m, k}, pipelined, accumulate, abt);
    EXPECT_LT(ops::max_abs_diff(got, want), 1e-12) << "abt vs 2D";
  }
  {
    DTensor A = optimus::testing::random_dtensor(Shape{m, n}, rng);
    DTensor B = optimus::testing::random_dtensor(Shape{m, k}, rng);
    DTensor got = run_form_25d(q, d, A, B, Shape{n, k}, pipelined, accumulate, atb);
    DTensor want = run_form(q, A, B, Shape{n, k}, pipelined, accumulate, atb);
    EXPECT_LT(ops::max_abs_diff(got, want), 1e-12) << "atb vs 2D";
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthMeshes, Summa25dSweep,
    ::testing::Values(Summa25dCase{1, 2, false, false}, Summa25dCase{1, 2, true, true},
                      Summa25dCase{2, 2, false, false}, Summa25dCase{2, 2, false, true},
                      Summa25dCase{2, 2, true, false}, Summa25dCase{2, 2, true, true},
                      Summa25dCase{2, 3, true, false}, Summa25dCase{3, 2, true, true}));

TEST(Summa25d, CommunicationVolumeMatchesDepthAccounting) {
  // At q = 2, d = 2 summa_ab moves q row-broadcasts of half A blocks and q
  // column-broadcasts of half B blocks (the /d Table-1 terms), then exactly
  // one depth tree-reduce and one depth broadcast of the C block.
  const int q = 2, d = 2;
  auto report = oc::run_cluster(q * q * d, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world, d);
    DTensor a = DTensor::zeros(Shape{4, 6});
    DTensor b = DTensor::zeros(Shape{6, 8});
    DTensor c = DTensor::zeros(Shape{4, 8});
    os::summa_ab(mesh, a, b, c);
  });
  const auto& s = report.ranks[0].stats;
  // Sub-panels: A 4×3 = 12 elems, B 3×8 = 24 elems; C block 32 elems.
  EXPECT_EQ(s.broadcast.calls, static_cast<std::uint64_t>(2 * q + 1));
  EXPECT_EQ(s.broadcast.elems, static_cast<std::uint64_t>(q * 12 + q * 24 + 32));
  EXPECT_EQ(s.reduce.calls, 1u);
  EXPECT_EQ(s.reduce.elems, 32u);
}

TEST(Summa25d, SimTimeMatchesDepthPredictor) {
  // The simulator's clock on a q×q×d mesh must reproduce the 2.5D closed form
  // — Table-1 terms /d plus the depth-reduction term — exactly, under both
  // schedules, and the d = 1 predictor must degenerate to the 2D one.
  namespace opm = optimus::perfmodel;
  const int q = 2, d = 2;
  const ot::index_t nb = 96 / q;
  const auto run_mode = [&](bool pipelined) {
    const auto report = oc::run_cluster(q * q * d, [&](oc::Context& ctx) {
      os::PipelineGuard guard(pipelined);
      om::Mesh2D mesh(ctx.world, d);
      DTensor A = DTensor::zeros(Shape{nb, nb});
      DTensor B = DTensor::zeros(Shape{nb, nb});
      DTensor C = DTensor::zeros(Shape{nb, nb});
      os::summa_ab(mesh, A, B, C);
    });
    return report.max_sim_time();
  };
  const double blocking = run_mode(false);
  const double pipelined = run_mode(true);
  const oc::Topology topo(q * q * d, /*gpus_per_node=*/4, oc::Arrangement::kBunched, 0);
  const oc::CostModel cost(topo, oc::MachineParams{});
  const auto pred = opm::predict_summa25_ab_times(cost, q, d, 96, 96, 96, sizeof(double));
  EXPECT_NEAR(blocking, pred.blocking_s, 1e-9 * pred.blocking_s);
  EXPECT_NEAR(pipelined, pred.pipelined_s, 1e-9 * pred.pipelined_s);
  EXPECT_LT(pipelined, blocking);

  const oc::Topology topo2(q * q, 4, oc::Arrangement::kBunched, 0);
  const oc::CostModel cost2(topo2, oc::MachineParams{});
  const auto flat = opm::predict_summa25_ab_times(cost2, q, 1, 96, 96, 96, sizeof(double));
  const auto flat2d = opm::predict_summa_ab_times(cost2, q, 96, 96, 96, sizeof(double));
  EXPECT_DOUBLE_EQ(flat.blocking_s, flat2d.blocking_s);
  EXPECT_DOUBLE_EQ(flat.pipelined_s, flat2d.pipelined_s);
}

TEST(SummaPipeline, SimTimeMatchesOverlapPredictorAndBeatsBlocking) {
  // The simulator's clock under each schedule must reproduce the closed-form
  // predictor exactly, and the pipelined schedule must hide at least 25% of
  // the blocking step time at q = 2 and q = 4 (comm-bound Table-1 regime).
  namespace opm = optimus::perfmodel;
  for (int q : {2, 4}) {
    const ot::index_t nb = 96 / q;  // 96×96×96 global product
    const auto run_mode = [&](bool pipelined) {
      const auto report = oc::run_cluster(q * q, [&](oc::Context& ctx) {
        os::PipelineGuard guard(pipelined);
        om::Mesh2D mesh(ctx.world);
        DTensor A = DTensor::zeros(Shape{nb, nb});
        DTensor B = DTensor::zeros(Shape{nb, nb});
        DTensor C = DTensor::zeros(Shape{nb, nb});
        os::summa_ab(mesh, A, B, C);
      });
      return report.max_sim_time();
    };
    const double blocking = run_mode(false);
    const double pipelined = run_mode(true);
    const oc::Topology topo(q * q, /*gpus_per_node=*/4, oc::Arrangement::kBunched, 0);
    const oc::CostModel cost(topo, oc::MachineParams{});
    const auto pred = opm::predict_summa_ab_times(cost, q, 96, 96, 96, sizeof(double));
    EXPECT_NEAR(blocking, pred.blocking_s, 1e-9 * pred.blocking_s) << "q=" << q;
    EXPECT_NEAR(pipelined, pred.pipelined_s, 1e-9 * pred.pipelined_s) << "q=" << q;
    EXPECT_LE(pipelined, 0.75 * blocking) << "q=" << q;
  }
}
