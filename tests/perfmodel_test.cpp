// Tests for the analytic performance model: Table-1 closed forms validated
// against the *measured* communication of the real engines, the memory model
// validated against the real allocator peaks, isoefficiency ordering, and
// calibration sanity.

#include <gtest/gtest.h>

#include <cmath>

#include "comm/cluster.hpp"
#include "core/optimus_model.hpp"
#include "megatron/megatron_model.hpp"
#include "mesh/mesh.hpp"
#include "perfmodel/costs.hpp"
#include "perfmodel/memory.hpp"
#include "perfmodel/scaling.hpp"
#include "runtime/data.hpp"

namespace oc = optimus::comm;
namespace om = optimus::model;
namespace opm = optimus::perfmodel;
namespace ort = optimus::runtime;

namespace {

om::TransformerConfig engine_config() {
  om::TransformerConfig cfg;
  cfg.batch = 4;
  cfg.seq_len = 8;
  cfg.hidden = 16;
  cfg.heads = 4;
  cfg.vocab = 16;
  cfg.layers = 2;
  cfg.seed = 5;
  return cfg;
}

opm::Workload to_workload(const om::TransformerConfig& cfg) {
  opm::Workload w;
  w.b = cfg.batch;
  w.s = cfg.seq_len;
  w.h = cfg.hidden;
  w.n = cfg.heads;
  w.v = cfg.vocab;
  w.layers = cfg.layers;
  return w;
}

}  // namespace

TEST(Table1, ClosedFormsAtPaperScale) {
  opm::Workload w;
  w.b = 30;
  w.s = 512;
  w.h = 8192;
  w.layers = 1;
  // Megatron forward at p=64: 4·63/64·bsh.
  EXPECT_NEAR(opm::megatron_fwd_comm(w, 64), 4.0 * 63 / 64 * 30.0 * 512 * 8192, 1.0);
  EXPECT_DOUBLE_EQ(opm::megatron_bwd_comm(w, 64), 2 * opm::megatron_fwd_comm(w, 64));
  // Optimus forward at p=64: log2(64)/(2·8)·(7bsh + 12h²) = 3/8·(…).
  const double bsh = 30.0 * 512 * 8192;
  const double h2 = 8192.0 * 8192;
  EXPECT_NEAR(opm::optimus_fwd_comm(w, 64), 6.0 / 16.0 * (7 * bsh + 12 * h2), 1.0);
  EXPECT_NEAR(opm::optimus_bwd_comm(w, 64), 6.0 / 16.0 * (21 * bsh + 36 * h2), 1.0);
  // Compute identical for both schemes.
  EXPECT_NEAR(opm::fwd_compute(w, 64), (12 * bsh * 8192 + 2 * 30.0 * 512 * 512 * 8192) / 64,
              1.0);
  EXPECT_DOUBLE_EQ(opm::bwd_compute(w, 64), 3 * opm::fwd_compute(w, 64));
}

TEST(Table1, MegatronEngineMatchesClosedForm) {
  // Measured all-reduce weighted units of one fwd+bwd through the real engine
  // must equal the Table-1 forward+backward forms (stem only; the embedding
  // assembly, lm-head and d_hidden all-reduces are accounted separately).
  const auto cfg = engine_config();
  const int p = 4;
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 3);
  const auto batch = workload.next();
  auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
    optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
  });
  const opm::Workload w = to_workload(cfg);
  const double stem =
      cfg.layers * (opm::megatron_fwd_comm(w, p) + opm::megatron_bwd_comm(w, p));
  const double ar = 2.0 * (p - 1) / p;
  const double bsh = static_cast<double>(cfg.batch * cfg.seq_len * cfg.hidden);
  const double bs = static_cast<double>(cfg.batch * cfg.seq_len);
  // embedding assembly (bsh) + d_hidden (bsh) + vocab-CE stats (3·bs: max is
  // counted with the same ring weight by our stats).
  const double extras = ar * (2.0 * bsh + 3.0 * bs);
  EXPECT_NEAR(report.ranks[0].stats.allreduce.weighted, stem + extras, 1e-6);
}

TEST(Table1, OptimusEngineMatchesClosedForm) {
  // The SUMMA broadcast/reduce weighted units of fwd+bwd through the real
  // engine must equal the Table-1 Optimus forms, once the small non-SUMMA
  // terms (bias/LN-slice broadcasts and reductions, embedding table
  // broadcasts) are added. The paper calls these "negligible"; here we
  // account for them exactly.
  const auto cfg = engine_config();
  const int q = 2, p = q * q;
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 3);
  const auto batch = workload.next();
  auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> engine(cfg, mesh);
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
  });
  const opm::Workload w = to_workload(cfg);
  const double lg = std::log2(static_cast<double>(q));
  const double hq = static_cast<double>(cfg.hidden) / q;
  const double fq = 4.0 * hq;
  const double tq = 3.0 * hq;
  const double vq = static_cast<double>(cfg.vocab) / q;
  const double s = cfg.seq_len;
  const double N = cfg.layers;

  // SUMMA stem terms (Table 1; fwd runs once, and with checkpointing the
  // backward includes one recomputed forward).
  const double stem_summa =
      N * (opm::optimus_fwd_comm(w, p) + opm::optimus_bwd_comm(w, p));
  // lm-head: Alg-2 logits (fwd), Alg-1 dX and Alg-3 dE (bwd). Per device each
  // moves q·(block + block) weighted by log2 q … written out per call:
  const double rows = static_cast<double>(cfg.batch) / q * s;
  const double lm_fwd = lg * q * (vq * hq + rows * vq);          // abt: bcast E + reduce C
  const double lm_bwd = lg * q * (rows * vq + vq * hq)           // ab: bcast dlogits + E
                        + lg * q * (rows * vq + vq * hq);        // atb: bcast dlogits + reduce dE
  // Hosted-slice broadcasts per layer fwd (and again in the recompute):
  // 4 LN slices (hq each) + biases (tq + hq + fq + hq).
  const double hosted_fwd = lg * (4 * hq + tq + 2 * hq + fq);
  // Hosted gradient reductions per layer bwd: same volumes.
  const double hosted_bwd = lg * (4 * hq + tq + 2 * hq + fq);
  const double hosted = N * (2 * hosted_fwd + hosted_bwd);  // fwd + recompute + bwd
  // Final layernorm: 2 slice broadcasts fwd, 2 partial reductions bwd.
  const double final_ln = lg * (2 * hq) + lg * (2 * hq);
  // Embedding: q table-block broadcasts + pos slice fwd; q reduces + pos bwd.
  const double embed = lg * (q * vq * hq + s * hq) + lg * (q * vq * hq + s * hq);
  const double expected_bcast_reduce =
      stem_summa + lm_fwd + lm_bwd + hosted + final_ln + embed;

  const auto& st = report.ranks[0].stats;
  EXPECT_NEAR(st.broadcast.weighted + st.reduce.weighted, expected_bcast_reduce,
              expected_bcast_reduce * 1e-9);
  // And the non-SUMMA all-reduce traffic (layernorm stats, CE stats) is small
  // relative to SUMMA, as §3.2.2 claims.
  EXPECT_LT(st.allreduce.weighted, 0.2 * (st.broadcast.weighted + st.reduce.weighted));
}

TEST(Memory, ModelTracksRealMegatronPeak) {
  const auto cfg = engine_config();
  const int p = 4;
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 3);
  const auto batch = workload.next();
  auto report = oc::run_cluster(p, [&](oc::Context& ctx) {
    optimus::megatron::MegatronTransformer<float> engine(cfg, ctx.world);
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
  });
  const auto mem = opm::megatron_memory(to_workload(cfg), p);
  const double measured = static_cast<double>(report.max_peak_bytes());
  const double modelled = static_cast<double>(mem.total());
  EXPECT_GT(modelled, 0.5 * measured);
  EXPECT_LT(modelled, 2.0 * measured);
}

TEST(Memory, ModelTracksRealOptimusPeak) {
  const auto cfg = engine_config();
  const int q = 2;
  ort::RandomLmWorkload workload(cfg.batch, cfg.seq_len, cfg.vocab, 3);
  const auto batch = workload.next();
  auto report = oc::run_cluster(q * q, [&](oc::Context& ctx) {
    optimus::mesh::Mesh2D mesh(ctx.world);
    optimus::core::OptimusTransformer<float> engine(cfg, mesh);
    engine.forward(batch.tokens);
    (void)engine.lm_loss(batch.labels);
    engine.backward_lm();
  });
  const auto mem = opm::optimus_memory(to_workload(cfg), q * q);
  const double measured = static_cast<double>(report.max_peak_bytes());
  const double modelled = static_cast<double>(mem.total());
  EXPECT_GT(modelled, 0.5 * measured);
  EXPECT_LT(modelled, 2.0 * measured);
}

TEST(Memory, Figure9TrendsReproduce) {
  // Fixed per-device budget, paper weak-scaling dims: Optimus's max batch
  // grows with p, Megatron's shrinks, and the p=64 ratio is large (paper: 8×).
  const std::uint64_t budget = 16ull << 30;  // 16 GB per device
  std::vector<optimus::tensor::index_t> mega, opti;
  for (int p : {4, 16, 36, 64}) {
    opm::Workload w = opm::weak_scaling_workload(p, opm::Scheme::kMegatron);
    mega.push_back(opm::max_batch(opm::Scheme::kMegatron, w, p, budget));
    w = opm::weak_scaling_workload(p, opm::Scheme::kOptimus);
    const int q = static_cast<int>(std::sqrt(p));
    opti.push_back(opm::max_batch(opm::Scheme::kOptimus, w, p, budget, q));
  }
  for (std::size_t i = 1; i < mega.size(); ++i) EXPECT_LE(mega[i], mega[i - 1]);
  for (std::size_t i = 1; i < opti.size(); ++i) EXPECT_GE(opti[i], opti[i - 1]);
  EXPECT_GE(opti.back(), 4 * mega.back());
}

TEST(Memory, MaxBatchRespectsGranularity) {
  opm::Workload w = opm::weak_scaling_workload(16, opm::Scheme::kOptimus);
  const auto b = opm::max_batch(opm::Scheme::kOptimus, w, 16, 8ull << 30, 4);
  EXPECT_EQ(b % 4, 0);
  EXPECT_GT(b, 0);
}

TEST(Scaling, IsoefficiencyGrowthRatesMatchPaper) {
  // §3.1.2: the problem size Megatron needs to hold efficiency grows like
  // W ~ p³ (h ∝ p), Optimus like W ~ (√p·log p)³ (h ∝ √p·log p). Check the
  // measured growth of the required hidden size over a 16× increase in p:
  // Megatron's factor ≈ 16, Optimus's ≈ √16·(log 256 / log 16) = 8.
  // §3.1.2's exponents follow from the paper's eq-4 tree model; with the
  // pipelined-collectives refinement Optimus grows even slower (h ∝ √p).
  opm::Machine m = opm::calibrate_from_paper();
  m.pipelined_collectives = false;
  const double target = 0.5;
  const auto h_meg_16 = opm::isoefficiency_hidden(opm::Scheme::kMegatron, 16, m, target);
  const auto h_meg_256 = opm::isoefficiency_hidden(opm::Scheme::kMegatron, 256, m, target);
  const auto h_opt_16 = opm::isoefficiency_hidden(opm::Scheme::kOptimus, 16, m, target);
  const auto h_opt_256 = opm::isoefficiency_hidden(opm::Scheme::kOptimus, 256, m, target);
  ASSERT_GT(h_meg_16, 0);
  ASSERT_GT(h_opt_16, 0);
  const double growth_meg = static_cast<double>(h_meg_256) / h_meg_16;
  const double growth_opt = static_cast<double>(h_opt_256) / h_opt_16;
  EXPECT_NEAR(growth_meg, 16.0, 3.0);
  EXPECT_NEAR(growth_opt, 8.0, 2.0);
  EXPECT_LT(growth_opt, growth_meg);
  // And at very large p the faster Megatron growth makes it infeasible first:
  // below the same h cap, Optimus still reaches the target efficiency while
  // Megatron no longer can.
  const auto cap = optimus::tensor::index_t{1} << 22;
  EXPECT_EQ(opm::isoefficiency_hidden(opm::Scheme::kMegatron, 4096, m, target, 64, cap), 0);
  EXPECT_GT(opm::isoefficiency_hidden(opm::Scheme::kOptimus, 4096, m, target, 64, cap), 0);
}

TEST(Scaling, ReferenceIsoefficiencyGrowth) {
  // W ~ p³ vs (√p·log p)³ — Megatron's requirement explodes faster.
  const double r64 = opm::isoefficiency_reference(opm::Scheme::kMegatron, 64) /
                     opm::isoefficiency_reference(opm::Scheme::kOptimus, 64);
  const double r256 = opm::isoefficiency_reference(opm::Scheme::kMegatron, 256) /
                      opm::isoefficiency_reference(opm::Scheme::kOptimus, 256);
  EXPECT_GT(r256, r64);
  EXPECT_GT(r64, 1.0);
}

TEST(Calibration, FitsPaperMegatronRows) {
  const opm::Machine m = opm::calibrate_from_paper();
  EXPECT_GT(m.flop_rate, 1e11);  // a plausible GPU
  EXPECT_LT(m.flop_rate, 1e14);
  EXPECT_GT(m.beta_inter, m.beta_intra * 0.5);  // inter-node no cheaper than intra
  // Reproduce the fitted rows within 35% (4 rows × 2 phases, 3 parameters).
  for (const auto& row : opm::paper_weak_megatron()) {
    const opm::Workload w = opm::weak_scaling_workload(row.gpus, opm::Scheme::kMegatron);
    const opm::StepTime t = opm::megatron_step_time(w, row.gpus, m);
    const double fwd_ref = row.fwd_per_seq_s * row.batch;
    EXPECT_NEAR(t.fwd_s, fwd_ref, 0.35 * fwd_ref) << row.gpus << " GPUs";
  }
}

TEST(Calibration, PredictsOptimusAdvantageAt64GpusOutOfSample) {
  // The headline result: with the machine fitted ONLY on Megatron data, the
  // model must predict Optimus overtaking Megatron in weak-scaling throughput
  // by 64 GPUs (paper: 1.48× train, 1.79× inference).
  const opm::Machine m = opm::calibrate_from_paper();
  const opm::Workload wm = opm::weak_scaling_workload(64, opm::Scheme::kMegatron);
  const opm::Workload wo = opm::weak_scaling_workload(64, opm::Scheme::kOptimus);
  const opm::StepTime tm = opm::megatron_step_time(wm, 64, m);
  const opm::StepTime to = opm::optimus_step_time(wo, 64, m);
  const double thr_m = wm.b / tm.total();
  const double thr_o = wo.b / to.total();
  EXPECT_GT(thr_o, thr_m);
  const double inf_m = wm.b / tm.fwd_s;
  const double inf_o = wo.b / to.fwd_s;
  EXPECT_GT(inf_o, inf_m);
}

TEST(CostModel, BunchedArrangementBeatsNaive) {
  opm::Machine m;
  const double naive = opm::beta_eff_optimus(m, 16, oc::Arrangement::kNaive);
  const double bunched = opm::beta_eff_optimus(m, 16, oc::Arrangement::kBunched);
  EXPECT_LT(bunched, naive);
}

TEST(CostModel, SingleDeviceHasNoCommunication) {
  opm::Workload w;
  EXPECT_DOUBLE_EQ(opm::megatron_fwd_comm(w, 1), 0.0);
  EXPECT_DOUBLE_EQ(opm::optimus_fwd_comm(w, 1), 0.0);
  opm::Machine m;
  const auto t = opm::optimus_step_time(w, 1, m);
  const auto ts = opm::serial_step_time(w, m);
  EXPECT_DOUBLE_EQ(t.total(), ts.total());
}
