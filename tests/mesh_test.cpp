// Tests for the 2D mesh: coordinates, row/column communicator membership and
// cross-mesh collectives.

#include <gtest/gtest.h>

#include "comm/cluster.hpp"
#include "mesh/mesh.hpp"
#include "model/config.hpp"

namespace oc = optimus::comm;
namespace om = optimus::mesh;

TEST(Mesh, SideComputation) {
  EXPECT_EQ(om::Mesh2D::mesh_side(1), 1);
  EXPECT_EQ(om::Mesh2D::mesh_side(4), 2);
  EXPECT_EQ(om::Mesh2D::mesh_side(9), 3);
  EXPECT_EQ(om::Mesh2D::mesh_side(64), 8);
  EXPECT_THROW(om::Mesh2D::mesh_side(6), optimus::util::CheckError);
}

namespace {

class MeshSweep : public ::testing::TestWithParam<int> {};

}  // namespace

TEST_P(MeshSweep, CoordinatesMatchRowMajorLayout) {
  const int q = GetParam();
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    ASSERT_EQ(mesh.q(), q);
    ASSERT_EQ(mesh.row(), ctx.rank / q);
    ASSERT_EQ(mesh.col(), ctx.rank % q);
    ASSERT_EQ(mesh.rank_of(mesh.row(), mesh.col()), ctx.rank);
    ASSERT_EQ(mesh.row_comm().size(), q);
    ASSERT_EQ(mesh.col_comm().size(), q);
    // Row communicator rank is the column coordinate and vice versa.
    ASSERT_EQ(mesh.row_comm().rank(), mesh.col());
    ASSERT_EQ(mesh.col_comm().rank(), mesh.row());
  });
}

TEST_P(MeshSweep, RowCollectiveStaysWithinRow) {
  const int q = GetParam();
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    std::vector<double> v{static_cast<double>(ctx.rank)};
    mesh.row_comm().all_reduce(v.data(), 1);
    // Sum over ranks in my row: row·q + {0..q−1}.
    double expected = 0;
    for (int c = 0; c < q; ++c) expected += mesh.row() * q + c;
    ASSERT_DOUBLE_EQ(v[0], expected);
  });
}

TEST_P(MeshSweep, ColumnBroadcastFromRowZero) {
  // The Fig.-5 pattern: parameters live on row 0 and are broadcast down
  // columns.
  const int q = GetParam();
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    std::vector<double> v{mesh.row() == 0 ? 100.0 + mesh.col() : -1.0};
    mesh.col_comm().broadcast(v.data(), 1, /*root=*/0);
    ASSERT_DOUBLE_EQ(v[0], 100.0 + mesh.col());
  });
}

INSTANTIATE_TEST_SUITE_P(MeshSides, MeshSweep, ::testing::Values(1, 2, 3, 4));

TEST(Mesh, NonSquareWorldThrows) {
  EXPECT_THROW(oc::run_cluster(6,
                               [](oc::Context& ctx) {
                                 om::Mesh2D mesh(ctx.world);
                                 (void)mesh;
                               }),
               optimus::util::CheckError);
}

TEST(Mesh, RowAndColumnCommsComposeToWorld) {
  // Broadcasting along a row then along columns reaches every device —
  // the mesh covers the world.
  oc::run_cluster(9, [](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    double v = (ctx.rank == 0) ? 7.5 : 0.0;
    if (mesh.row() == 0) mesh.row_comm().broadcast(&v, 1, 0);
    mesh.col_comm().broadcast(&v, 1, 0);
    ASSERT_DOUBLE_EQ(v, 7.5);
  });
}

TEST(Mesh, ConfigValidationRejectsNonDivisibleShapes) {
  optimus::model::TransformerConfig cfg;
  cfg.batch = 3;
  cfg.seq_len = 5;  // seq never needs to divide: it stays whole on-device
  cfg.hidden = 18;
  cfg.heads = 3;
  cfg.vocab = 18;
  cfg.layers = 1;
  EXPECT_NO_THROW(cfg.validate_for_mesh(3));
  // Each constraint individually: batch, heads (and through it hidden), vocab.
  auto bad = cfg;
  bad.batch = 4;
  EXPECT_THROW(bad.validate_for_mesh(3), optimus::util::CheckError);
  bad = cfg;
  bad.heads = 2;
  bad.hidden = 16;
  EXPECT_THROW(bad.validate_for_mesh(3), optimus::util::CheckError);
  bad = cfg;
  bad.vocab = 20;
  EXPECT_THROW(bad.validate_for_mesh(3), optimus::util::CheckError);
}
