// Tests for the 2D / 2.5D mesh: coordinates, row/column/depth communicator
// membership and cross-mesh collectives.

#include <gtest/gtest.h>

#include "comm/cluster.hpp"
#include "mesh/mesh.hpp"
#include "model/config.hpp"

namespace oc = optimus::comm;
namespace om = optimus::mesh;

TEST(Mesh, SideComputation) {
  EXPECT_EQ(om::Mesh2D::mesh_side(1), 1);
  EXPECT_EQ(om::Mesh2D::mesh_side(4), 2);
  EXPECT_EQ(om::Mesh2D::mesh_side(9), 3);
  EXPECT_EQ(om::Mesh2D::mesh_side(64), 8);
  EXPECT_THROW(om::Mesh2D::mesh_side(6), optimus::util::CheckError);
}

TEST(Mesh, SideComputationWithDepth) {
  EXPECT_EQ(om::Mesh2D::mesh_side(2, 2), 1);
  EXPECT_EQ(om::Mesh2D::mesh_side(8, 2), 2);
  EXPECT_EQ(om::Mesh2D::mesh_side(27, 3), 3);
  EXPECT_EQ(om::Mesh2D::mesh_side(4, 1), 2);
  // World not divisible by depth, and quotient not a perfect square.
  EXPECT_THROW(om::Mesh2D::mesh_side(9, 2), optimus::util::CheckError);
  EXPECT_THROW(om::Mesh2D::mesh_side(6, 3), optimus::util::CheckError);
  EXPECT_THROW(om::Mesh2D::mesh_side(4, 0), optimus::util::CheckError);
}

namespace {

class MeshSweep : public ::testing::TestWithParam<int> {};

}  // namespace

TEST_P(MeshSweep, CoordinatesMatchRowMajorLayout) {
  const int q = GetParam();
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    ASSERT_EQ(mesh.q(), q);
    ASSERT_EQ(mesh.row(), ctx.rank / q);
    ASSERT_EQ(mesh.col(), ctx.rank % q);
    ASSERT_EQ(mesh.rank_of(mesh.row(), mesh.col()), ctx.rank);
    ASSERT_EQ(mesh.row_comm().size(), q);
    ASSERT_EQ(mesh.col_comm().size(), q);
    // Row communicator rank is the column coordinate and vice versa.
    ASSERT_EQ(mesh.row_comm().rank(), mesh.col());
    ASSERT_EQ(mesh.col_comm().rank(), mesh.row());
  });
}

TEST_P(MeshSweep, RowCollectiveStaysWithinRow) {
  const int q = GetParam();
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    std::vector<double> v{static_cast<double>(ctx.rank)};
    mesh.row_comm().all_reduce(v.data(), 1);
    // Sum over ranks in my row: row·q + {0..q−1}.
    double expected = 0;
    for (int c = 0; c < q; ++c) expected += mesh.row() * q + c;
    ASSERT_DOUBLE_EQ(v[0], expected);
  });
}

TEST_P(MeshSweep, ColumnBroadcastFromRowZero) {
  // The Fig.-5 pattern: parameters live on row 0 and are broadcast down
  // columns.
  const int q = GetParam();
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    std::vector<double> v{mesh.row() == 0 ? 100.0 + mesh.col() : -1.0};
    mesh.col_comm().broadcast(v.data(), 1, /*root=*/0);
    ASSERT_DOUBLE_EQ(v[0], 100.0 + mesh.col());
  });
}

INSTANTIATE_TEST_SUITE_P(MeshSides, MeshSweep, ::testing::Values(1, 2, 3, 4));

TEST(Mesh, NonSquareWorldThrows) {
  EXPECT_THROW(oc::run_cluster(6,
                               [](oc::Context& ctx) {
                                 om::Mesh2D mesh(ctx.world);
                                 (void)mesh;
                               }),
               optimus::util::CheckError);
}

TEST(Mesh, RowAndColumnCommsComposeToWorld) {
  // Broadcasting along a row then along columns reaches every device —
  // the mesh covers the world.
  oc::run_cluster(9, [](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world);
    double v = (ctx.rank == 0) ? 7.5 : 0.0;
    if (mesh.row() == 0) mesh.row_comm().broadcast(&v, 1, 0);
    mesh.col_comm().broadcast(&v, 1, 0);
    ASSERT_DOUBLE_EQ(v, 7.5);
  });
}

namespace {

/// (q, d) pairs for the 2.5D sweep.
class MeshDepthSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

}  // namespace

TEST_P(MeshDepthSweep, DepthCoordinatesFormABijection) {
  const auto [q, d] = GetParam();
  oc::run_cluster(q * q * d, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world, d);
    ASSERT_EQ(mesh.q(), q);
    ASSERT_EQ(mesh.p(), q * q);
    ASSERT_EQ(mesh.depth(), d);
    // rank → (row, col, depth) is the depth-major bijection...
    ASSERT_EQ(mesh.depth_idx(), ctx.rank / (q * q));
    ASSERT_EQ(mesh.row(), (ctx.rank % (q * q)) / q);
    ASSERT_EQ(mesh.col(), ctx.rank % q);
    // ...and rank_of inverts it, both within this layer and explicitly.
    ASSERT_EQ(mesh.rank_of(mesh.row(), mesh.col()), ctx.rank);
    ASSERT_EQ(mesh.rank_of(mesh.row(), mesh.col(), mesh.depth_idx()), ctx.rank);
  });
}

TEST_P(MeshDepthSweep, GroupsAreHomogeneous) {
  // Every communicator's world-rank table is exactly the set its direction
  // promises: row groups vary col, column groups vary row, depth groups vary
  // only the layer — all anchored at this device's own coordinates.
  const auto [q, d] = GetParam();
  oc::run_cluster(q * q * d, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world, d);
    ASSERT_EQ(mesh.row_comm().size(), q);
    ASSERT_EQ(mesh.col_comm().size(), q);
    ASSERT_EQ(mesh.row_comm().rank(), mesh.col());
    ASSERT_EQ(mesh.col_comm().rank(), mesh.row());
    for (int c = 0; c < q; ++c) {
      ASSERT_EQ(mesh.row_comm().world_rank_of(c), mesh.rank_of(mesh.row(), c));
    }
    for (int r = 0; r < q; ++r) {
      ASSERT_EQ(mesh.col_comm().world_rank_of(r), mesh.rank_of(r, mesh.col()));
    }
    if (d > 1) {
      ASSERT_EQ(mesh.depth_comm().size(), d);
      ASSERT_EQ(mesh.depth_comm().rank(), mesh.depth_idx());
      for (int z = 0; z < d; ++z) {
        ASSERT_EQ(mesh.depth_comm().world_rank_of(z),
                  mesh.rank_of(mesh.row(), mesh.col(), z));
      }
    }
  });
}

TEST_P(MeshDepthSweep, DepthCollectiveStaysWithinDepthGroup) {
  const auto [q, d] = GetParam();
  if (d == 1) return;  // no depth group to exercise
  oc::run_cluster(q * q * d, [&](oc::Context& ctx) {
    om::Mesh2D mesh(ctx.world, d);
    std::vector<double> v{static_cast<double>(ctx.rank)};
    mesh.depth_comm().all_reduce(v.data(), 1);
    // Sum over the layers sharing my (row, col): Σ_z z·q² + row·q + col.
    double expected = 0;
    for (int z = 0; z < d; ++z) expected += z * q * q + mesh.row() * q + mesh.col();
    ASSERT_DOUBLE_EQ(v[0], expected);
  });
}

INSTANTIATE_TEST_SUITE_P(MeshShapes, MeshDepthSweep,
                         ::testing::Values(std::pair<int, int>{1, 1},
                                           std::pair<int, int>{1, 3},
                                           std::pair<int, int>{2, 1},
                                           std::pair<int, int>{2, 2},
                                           std::pair<int, int>{2, 3},
                                           std::pair<int, int>{3, 2}));

TEST(Mesh, DepthOneTablesMatchThe2DMesh) {
  // A depth-1 mesh must be indistinguishable from the original 2D mesh: same
  // group tables bitwise, and no depth communicator at all.
  const int q = 3;
  oc::run_cluster(q * q, [&](oc::Context& ctx) {
    om::Mesh2D legacy(ctx.world);
    om::Mesh2D meshd(ctx.world, /*depth=*/1);
    ASSERT_EQ(meshd.depth(), 1);
    ASSERT_EQ(meshd.depth_idx(), 0);
    ASSERT_TRUE(meshd.row_comm().group() == legacy.row_comm().group());
    ASSERT_TRUE(meshd.col_comm().group() == legacy.col_comm().group());
    ASSERT_EQ(meshd.row(), legacy.row());
    ASSERT_EQ(meshd.col(), legacy.col());
    ASSERT_THROW(meshd.depth_comm(), optimus::util::CheckError);
    ASSERT_THROW(legacy.depth_comm(), optimus::util::CheckError);
  });
}

TEST(Mesh, DepthWorldSizeMismatchThrows) {
  // 6 = 2·3 but 3 is not a perfect square; 8 at depth 3 is not divisible.
  EXPECT_THROW(oc::run_cluster(6,
                               [](oc::Context& ctx) {
                                 om::Mesh2D mesh(ctx.world, 2);
                                 (void)mesh;
                               }),
               optimus::util::CheckError);
  EXPECT_THROW(oc::run_cluster(8,
                               [](oc::Context& ctx) {
                                 om::Mesh2D mesh(ctx.world, 3);
                                 (void)mesh;
                               }),
               optimus::util::CheckError);
}

TEST(Mesh, ConfigValidationRejectsDepthNonDivisibleShapes) {
  optimus::model::TransformerConfig cfg;
  cfg.batch = 2;
  cfg.seq_len = 4;
  cfg.hidden = 8;
  cfg.heads = 2;
  cfg.vocab = 8;
  cfg.layers = 1;
  EXPECT_NO_THROW(cfg.validate_for_mesh(2, 2));
  // Each depth constraint individually: hidden % q·d, vocab % q·d, and the
  // token rows b·s/q % d of the weight-gradient AᵀB contraction.
  auto bad = cfg;
  bad.hidden = 6;
  bad.heads = 6;  // keeps hidden % heads and heads % q satisfied
  EXPECT_THROW(bad.validate_for_mesh(2, 2), optimus::util::CheckError);
  bad = cfg;
  bad.vocab = 6;
  EXPECT_THROW(bad.validate_for_mesh(2, 2), optimus::util::CheckError);
  bad = cfg;
  bad.seq_len = 3;
  EXPECT_THROW(bad.validate_for_mesh(2, 2), optimus::util::CheckError);
  EXPECT_THROW(cfg.validate_for_mesh(2, 0), optimus::util::CheckError);
}

TEST(Mesh, ConfigValidationRejectsNonDivisibleShapes) {
  optimus::model::TransformerConfig cfg;
  cfg.batch = 3;
  cfg.seq_len = 5;  // seq never needs to divide: it stays whole on-device
  cfg.hidden = 18;
  cfg.heads = 3;
  cfg.vocab = 18;
  cfg.layers = 1;
  EXPECT_NO_THROW(cfg.validate_for_mesh(3));
  // Each constraint individually: batch, heads (and through it hidden), vocab.
  auto bad = cfg;
  bad.batch = 4;
  EXPECT_THROW(bad.validate_for_mesh(3), optimus::util::CheckError);
  bad = cfg;
  bad.heads = 2;
  bad.hidden = 16;
  EXPECT_THROW(bad.validate_for_mesh(3), optimus::util::CheckError);
  bad = cfg;
  bad.vocab = 20;
  EXPECT_THROW(bad.validate_for_mesh(3), optimus::util::CheckError);
}
