// Tests for the metrics registry (obs/metrics) and the fault flight recorder
// (obs/flight): histogram quantile accuracy against a sorted-vector oracle,
// merge order-independence down to the serialized bytes, registry handle
// stability across reset, flight-ring truncation, and the per-rank
// utilization breakdown partitioning simulated time.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "comm/cluster.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"

namespace ob = optimus::obs;
namespace oc = optimus::comm;

namespace {

/// Deterministic value stream (no <random> — bucketing must see the same
/// doubles on every platform).
std::vector<double> lcg_values(std::size_t n, std::uint64_t seed) {
  std::vector<double> v;
  v.reserve(n);
  std::uint64_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    // Spread over ~6 orders of magnitude: 1e-4 .. ~1e2.
    const double u = static_cast<double>(x >> 11) / 9007199254740992.0;  // [0,1)
    v.push_back(1e-4 * std::pow(10.0, 6.0 * u));
  }
  return v;
}

/// The convention the serving layer uses: sorted[⌈p·n⌉ − 1].
double oracle_quantile(std::vector<double> v, double p) {
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1,
      static_cast<std::size_t>(std::ceil(p * static_cast<double>(v.size()))) - (p > 0 ? 1 : 0));
  return v[idx];
}

struct MetricsGuard {
  MetricsGuard() {
    ob::set_metrics_enabled(false);
    ob::metrics_reset();
  }
  ~MetricsGuard() {
    ob::set_metrics_enabled(false);
    ob::metrics_reset();
  }
};

struct FlightGuard {
  FlightGuard() {
    ob::set_flight_enabled(false);
    ob::flight_reset();
    ob::flight_configure(128);
    ob::flight_set_postmortem_prefix("");
  }
  ~FlightGuard() {
    ob::set_flight_enabled(false);
    ob::flight_reset();
    ob::flight_configure(128);
    ob::flight_set_postmortem_prefix("");
  }
};

}  // namespace

TEST(Histogram, QuantilesMatchSortedOracleWithinBucketError) {
  ob::Histogram h;
  const auto values = lcg_values(5000, 99);
  for (const double v : values) h.record(v);
  ASSERT_EQ(h.count(), values.size());
  // The representative is the containing bucket's lower bound, so it can sit
  // below the exact quantile by at most one sub-bucket width: 2^(1/16) − 1.
  const double kRel = std::pow(2.0, 1.0 / 16.0) - 1.0;
  for (const double p : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = oracle_quantile(values, p);
    const double approx = h.quantile(p);
    EXPECT_LE(approx, exact * (1 + 1e-12)) << "p=" << p;
    EXPECT_GE(approx, exact * (1 - kRel) * (1 - 1e-12)) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), *std::min_element(values.begin(), values.end()));
  // p = 1 selects the max's bucket; the representative is its lower bound.
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(1.0), h.max() * (1 - kRel) * (1 - 1e-12));
}

TEST(Histogram, EmptyAndSingleSampleEdges) {
  ob::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.record(3.25);
  EXPECT_EQ(h.count(), 1u);
  // Clamping to [min, max] makes the single-sample case exact.
  for (const double p : {0.0, 0.5, 0.99, 1.0}) EXPECT_DOUBLE_EQ(h.quantile(p), 3.25);
  // Zero and negative values land in the underflow bucket, representative 0
  // (its lower bound, already inside [min, max] here so no clamping).
  ob::Histogram z;
  z.record(0.0);
  z.record(-7.0);
  EXPECT_EQ(z.count(), 2u);
  EXPECT_DOUBLE_EQ(z.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(z.min(), -7.0);
}

TEST(Histogram, MergeIsOrderIndependentDownToBytes) {
  const auto a_vals = lcg_values(700, 1);
  const auto b_vals = lcg_values(900, 2);
  const auto c_vals = lcg_values(300, 3);
  const auto fill = [](ob::Histogram& h, const std::vector<double>& vs) {
    for (const double v : vs) h.record(v);
  };
  // (a ⊕ b) ⊕ c
  ob::Histogram abc;
  {
    ob::Histogram a, b, c;
    fill(a, a_vals);
    fill(b, b_vals);
    fill(c, c_vals);
    abc.merge(a);
    abc.merge(b);
    abc.merge(c);
  }
  // c ⊕ (b ⊕ a)
  ob::Histogram cba;
  {
    ob::Histogram a, b, c;
    fill(a, a_vals);
    fill(b, b_vals);
    fill(c, c_vals);
    cba.merge(c);
    cba.merge(b);
    cba.merge(a);
  }
  // Everything recorded into one histogram directly.
  ob::Histogram direct;
  fill(direct, a_vals);
  fill(direct, b_vals);
  fill(direct, c_vals);
  EXPECT_EQ(abc.to_json().dump(), cba.to_json().dump());
  EXPECT_EQ(abc.to_json().dump(), direct.to_json().dump());
}

TEST(Metrics, DisabledSitesRecordNothing) {
  MetricsGuard guard;
  ASSERT_FALSE(ob::metrics_enabled());
  ob::metrics_count("test.counter", 5);
  ob::metrics_observe("test.hist", 1.0);
  ob::metrics_gauge_max("test.gauge", 9.0);
  EXPECT_EQ(ob::MetricsRegistry::instance().counter("test.counter").value(), 0u);
  EXPECT_EQ(ob::MetricsRegistry::instance().histogram("test.hist").count(), 0u);
  EXPECT_EQ(ob::MetricsRegistry::instance().gauge("test.gauge").value(), 0.0);
}

TEST(Metrics, ResetZeroesInPlaceAndHandlesStayValid) {
  MetricsGuard guard;
  ob::set_metrics_enabled(true);
  auto& c = ob::MetricsRegistry::instance().counter("test.stable");
  c.add(41);
  ob::metrics_reset();
  EXPECT_EQ(c.value(), 0u);  // same object, zeroed
  EXPECT_EQ(&c, &ob::MetricsRegistry::instance().counter("test.stable"));
  c.add(1);
  EXPECT_EQ(ob::MetricsRegistry::instance().counter("test.stable").value(), 1u);
}

TEST(Metrics, SnapshotIsNameSortedAndTyped) {
  MetricsGuard guard;
  ob::set_metrics_enabled(true);
  ob::metrics_count("zz.counter");
  ob::metrics_observe("aa.hist", 2.0);
  ob::metrics_gauge_set("mm.gauge", 7.5);
  const ob::Json snap = ob::metrics_snapshot_json();
  ASSERT_TRUE(snap.is_object());
  // Registry entries persist across resets (handles stay valid), so other
  // tests' metrics may appear too — require a name-sorted snapshot containing
  // ours with the right types and values.
  for (std::size_t i = 1; i < snap.fields().size(); ++i) {
    EXPECT_LT(snap.fields()[i - 1].first, snap.fields()[i].first);
  }
  EXPECT_EQ(snap.get("zz.counter").get("type").as_string(), "counter");
  EXPECT_EQ(snap.get("zz.counter").get("value").as_number(), 1.0);
  EXPECT_EQ(snap.get("mm.gauge").get("value").as_number(), 7.5);
  EXPECT_EQ(snap.get("aa.hist").get("type").as_string(), "histogram");
}

TEST(Flight, RingTruncatesButSequenceNumbersStayMonotone) {
  FlightGuard guard;
  ob::set_flight_enabled(true);
  ob::flight_configure(4);
  for (int i = 0; i < 10; ++i) {
    ob::flight_note("test", "ev" + std::to_string(i), static_cast<double>(i), "");
  }
  const ob::Json j = ob::flight_rank_json();
  EXPECT_EQ(j.get("events_seen").as_number(), 10.0);
  const auto& events = j.get("events").items();
  ASSERT_EQ(events.size(), 4u);  // ring kept only the newest 4
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].get("name").as_string(), "ev" + std::to_string(6 + i));
    EXPECT_EQ(events[i].get("seq").as_number(), static_cast<double>(6 + i));
  }
}

TEST(Flight, FirstAbortNoteWins) {
  FlightGuard guard;
  ob::set_flight_enabled(true);
  ob::flight_note_abort("allreduce");
  ob::flight_note_abort("broadcast");
  EXPECT_EQ(ob::flight_rank_json().get("abort_op").as_string(), "allreduce");
  ob::flight_reset();
  EXPECT_EQ(ob::flight_rank_json().get("abort_op").as_string(), "");
}

TEST(Flight, DisabledNotesAreDropped) {
  FlightGuard guard;
  ASSERT_FALSE(ob::flight_enabled());
  ob::flight_note("test", "ev", 0.0, "");
  EXPECT_EQ(ob::flight_rank_json().get("events_seen").as_number(), 0.0);
}

TEST(Utilization, BucketsPartitionSimulatedTimePerRank) {
  // A mixed collective workload: broadcasts (transfer + align) with idle gaps.
  const auto report = oc::run_cluster(4, [](oc::Context& ctx) {
    std::vector<float> buf(1024, ctx.rank == 0 ? 1.f : 0.f);
    for (int i = 0; i < 8; ++i) {
      ctx.world.broadcast(buf.data(), static_cast<optimus::tensor::index_t>(buf.size()), 0);
      if (ctx.rank == 0) ctx.clock.advance(1e-5);  // rank-0 idle stall
      ctx.world.barrier();
    }
  });
  ASSERT_EQ(report.ranks.size(), 4u);
  for (std::size_t rank = 0; rank < report.ranks.size(); ++rank) {
    const auto& rr = report.ranks[rank];
    const auto& u = rr.util;
    const double accounted = u.compute + u.align_wait + u.transfer + u.idle;
    EXPECT_GT(rr.sim_time, 0.0);
    EXPECT_NEAR(accounted, rr.sim_time, 1e-9 * rr.sim_time + 1e-15)
        << "rank " << rank << " breakdown does not partition its timeline";
    EXPECT_GE(u.align_wait, 0.0);
    EXPECT_GT(u.transfer, 0.0);  // every rank moved broadcast bytes
  }
  // The injected stall is idle time on rank 0 and align-wait on its peers.
  EXPECT_GE(report.ranks[0].util.idle, 8e-5 * (1 - 1e-9));
  EXPECT_GT(report.ranks[1].util.align_wait, 0.0);
}
