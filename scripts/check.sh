#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass over the memory-heavy layers.
#
#   1. Configure + build the default preset and run the full ctest suite
#      (the ROADMAP tier-1 gate).
#   2. Observability smoke: run the quickstart twice (traced and untraced),
#      require byte-identical stdout, and validate the emitted Chrome trace
#      (well-formed JSON, monotone per-track timestamps, proper span nesting)
#      with tools/trace_validate.
#   3. Build the tensor/kernel tests under ASan+UBSan (the `asan` preset in
#      CMakePresets.json) and run them — the kernel layer hands raw pointers
#      and thread-shared buffers around, exactly where sanitizers earn their
#      keep.
#
# Usage: scripts/check.sh [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
[[ "${1:-}" == "--skip-asan" ]] && SKIP_ASAN=1

echo "==> tier-1: configure + build (default preset)"
cmake --preset default
cmake --build --preset default -j"$(nproc)"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "==> observability: traced vs untraced quickstart must match byte-for-byte"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
./build/examples/quickstart > "$OBS_TMP/plain.out"
./build/examples/quickstart --trace-out "$OBS_TMP/trace.json" \
    --metrics-out "$OBS_TMP/metrics.json" > "$OBS_TMP/traced.out"
diff "$OBS_TMP/plain.out" "$OBS_TMP/traced.out"
echo "    stdout identical"

echo "==> observability: validate Chrome trace + metrics JSON"
./build/tools/trace_validate "$OBS_TMP/trace.json"
if command -v python3 >/dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OBS_TMP/metrics.json" \
    && echo "    metrics.json parses"
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "==> asan pass skipped (--skip-asan)"
  exit 0
fi

echo "==> sanitizer pass: asan preset (tensor + kernel tests)"
cmake --preset asan
cmake --build --preset asan -j"$(nproc)" --target kernel_test tensor_test ops_test

./build-asan/tests/kernel_test
./build-asan/tests/tensor_test
./build-asan/tests/ops_test

echo "==> all checks passed"
