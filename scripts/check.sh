#!/usr/bin/env bash
# Tier-1 verification, the differential fuzz smoke, and sanitizer passes.
#
#   1. Configure + build the default preset and run the full ctest suite
#      (the ROADMAP tier-1 gate).
#   2. Observability smoke: run the quickstart twice (traced and untraced),
#      require byte-identical stdout, and validate the emitted Chrome trace
#      (well-formed JSON, monotone per-track timestamps, proper span nesting)
#      and metrics JSON (tools/trace_validate, both modes). Then a traced +
#      metered serving run: request-lane nesting validated, metrics JSON
#      schema-checked and byte-diffed across two runs.
#   3. Differential fuzz smoke: tools/fuzz_equivalence --configs 25 --seed 7,
#      run twice — both runs must pass AND produce byte-identical reports
#      (the harness promises determinism; a diff here means nondeterminism
#      leaked into the engines or the report).
#   4. Serving smoke: bench_serving (fixed seeds, simulated clock) run twice
#      with byte-diffed stdout + BENCH_serving.json, then gated against the
#      checked-in baseline with tools/bench_gate.
#   5. Fast-label test suite under ASan+UBSan (`asan` preset) and TSan
#      (`tsan` preset). The comm layer runs one thread per simulated device,
#      exactly where TSan earns its keep. The serving-label suite also runs
#      under TSan (scheduler + decode collectives interleave across ranks).
#
# Usage: scripts/check.sh [--skip-sanitizers|--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_SAN=0
[[ "${1:-}" == "--skip-asan" || "${1:-}" == "--skip-sanitizers" ]] && SKIP_SAN=1

echo "==> tier-1: configure + build (default preset)"
cmake --preset default
cmake --build --preset default -j"$(nproc)"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j"$(nproc)"

echo "==> observability: traced vs untraced quickstart must match byte-for-byte"
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "$OBS_TMP"' EXIT
./build/examples/quickstart > "$OBS_TMP/plain.out"
./build/examples/quickstart --trace-out "$OBS_TMP/trace.json" \
    --metrics-out "$OBS_TMP/metrics.json" > "$OBS_TMP/traced.out"
diff "$OBS_TMP/plain.out" "$OBS_TMP/traced.out"
echo "    stdout identical"

echo "==> observability: validate Chrome trace + metrics JSON"
./build/tools/trace_validate "$OBS_TMP/trace.json"
./build/tools/trace_validate --metrics "$OBS_TMP/metrics.json"

echo "==> telemetry smoke: traced+metered serving run, validated + byte-diffed"
# One Optimus load point with request-lane tracing and the metrics registry
# armed. The trace must validate (lifecycle/decode-step lane nesting, no
# orphan spans); the metrics JSON (pool/span sections excluded — those carry
# wall-clock numbers) must validate against the schema and reproduce
# byte-for-byte across two runs.
./build/bench/bench_serving --smoke --trace-out "$OBS_TMP/serving_trace.json" \
    --metrics-out "$OBS_TMP/serving_metrics_a.json" > /dev/null
./build/bench/bench_serving --smoke \
    --metrics-out "$OBS_TMP/serving_metrics_b.json" > /dev/null
./build/tools/trace_validate "$OBS_TMP/serving_trace.json"
./build/tools/trace_validate --metrics "$OBS_TMP/serving_metrics_a.json"
diff "$OBS_TMP/serving_metrics_a.json" "$OBS_TMP/serving_metrics_b.json"
echo "    serving trace valid, metrics schema-clean and byte-identical"

echo "==> differential fuzz smoke: 25 configs, twice, byte-identical reports"
# The sampler derives Tesseract depth d=2 from the seed mix where the shape
# allows, so this sweep exercises 2.5D engines alongside the 2D corpus.
./build/tools/fuzz_equivalence --configs 25 --seed 7 --report "$OBS_TMP/fuzz_a.txt" > /dev/null
./build/tools/fuzz_equivalence --configs 25 --seed 7 --report "$OBS_TMP/fuzz_b.txt" > /dev/null
diff "$OBS_TMP/fuzz_a.txt" "$OBS_TMP/fuzz_b.txt"
echo "    25/25 configs pass (d-extended corpus), reports byte-identical"

echo "==> serving smoke: fixed-seed bench_serving, twice, byte-identical"
# The serving bench runs entirely on the simulated clock with seeded traffic,
# so stdout and BENCH_serving.json must reproduce byte-for-byte. It also
# asserts the >=3x cached-vs-recompute speedup and the decode-step closed
# form internally (OPT_CHECK aborts on violation).
ROOT="$(pwd)"
(cd "$OBS_TMP" && "$ROOT/build/bench/bench_serving" > serving_a.out && mv BENCH_serving.json serving_a.json)
(cd "$OBS_TMP" && "$ROOT/build/bench/bench_serving" > serving_b.out && mv BENCH_serving.json serving_b.json)
diff "$OBS_TMP/serving_a.out" "$OBS_TMP/serving_b.out"
diff "$OBS_TMP/serving_a.json" "$OBS_TMP/serving_b.json"
echo "    serving bench deterministic, speedup + cost-model asserts pass"

echo "==> bench gate: fresh BENCH_serving.json vs checked-in baseline"
# Everything compared derives from the simulated clock (gflops/wall_ms are
# skipped by default), so drift beyond the tolerance is a real regression —
# or an intentional change that should update the baseline file.
./build/tools/bench_gate BENCH_serving.json "$OBS_TMP/serving_a.json"

echo "==> bench gate: fresh BENCH_summa.json vs checked-in baseline"
# Covers the 2D rows plus the 2.5D crossover rows (summa25_ab_*) and the
# Cannon baseline; all gated fields are simulated-clock numbers. The
# --benchmark_filter skips the google-benchmark section — only the manual
# JSON sweep runs.
(cd "$OBS_TMP" && "$ROOT/build/bench/bench_summa" --benchmark_filter='^$' > /dev/null 2>&1)
./build/tools/bench_gate BENCH_summa.json "$OBS_TMP/BENCH_summa.json"

echo "==> thread-scaling smoke: 1024^3 f32 GEMM, 1 vs 4 threads"
# Fails if threading makes the kernel slower (core-count-aware bound; see
# tools/thread_scaling_smoke.cpp). Guards the shared-pack schedule against
# reintroducing the per-worker re-packing regression.
./build/tools/thread_scaling_smoke

if [[ "$SKIP_SAN" == "1" ]]; then
  echo "==> sanitizer passes skipped"
  exit 0
fi

echo "==> sanitizer pass: asan preset (fast-label suite)"
cmake --preset asan
cmake --build --preset asan -j"$(nproc)"
ctest --test-dir build-asan -L fast --output-on-failure -j"$(nproc)"

echo "==> sanitizer pass: tsan preset (fast-label suite, both SUMMA schedules)"
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)"
# The pipelined schedule changes which threads touch the fabric concurrently
# (async irecvs + deferred waits), so TSan runs the suite under both modes.
# The fast label includes the q×q×d (depth 2/3) mesh, SUMMA and fault tests,
# so the 2.5D depth fold runs under both sanitizers as well.
OPTIMUS_SUMMA_PIPELINE=0 ctest --test-dir build-tsan -L fast --output-on-failure -j"$(nproc)"
OPTIMUS_SUMMA_PIPELINE=1 ctest --test-dir build-tsan -L fast --output-on-failure -j"$(nproc)"
# Force a 4-thread kernel budget so the cooperative GEMM's barrier and
# claim-counter paths actually run multi-threaded under TSan (the default
# budget on a small CI host may be 1, which would never exercise them).
OPTIMUS_KERNEL_THREADS=4 ctest --test-dir build-tsan -L fast --output-on-failure -j"$(nproc)"
# The serving label drives the continuous-batching scheduler and KV-cached
# decode through multi-rank clusters — admission/eviction interleaves with
# collective traffic, exactly where a scheduler data race would hide.
ctest --test-dir build-tsan -L serving --output-on-failure -j"$(nproc)"

echo "==> all checks passed"
