#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass over the memory-heavy layers.
#
#   1. Configure + build the default preset and run the full ctest suite
#      (the ROADMAP tier-1 gate).
#   2. Build the tensor/kernel tests under ASan+UBSan (the `asan` preset in
#      CMakePresets.json) and run them — the kernel layer hands raw pointers
#      and thread-shared buffers around, exactly where sanitizers earn their
#      keep.
#
# Usage: scripts/check.sh [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

SKIP_ASAN=0
[[ "${1:-}" == "--skip-asan" ]] && SKIP_ASAN=1

echo "==> tier-1: configure + build (default preset)"
cmake --preset default
cmake --build --preset default -j"$(nproc)"

echo "==> tier-1: ctest"
ctest --test-dir build --output-on-failure -j"$(nproc)"

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "==> asan pass skipped (--skip-asan)"
  exit 0
fi

echo "==> sanitizer pass: asan preset (tensor + kernel tests)"
cmake --preset asan
cmake --build --preset asan -j"$(nproc)" --target kernel_test tensor_test ops_test

./build-asan/tests/kernel_test
./build-asan/tests/tensor_test
./build-asan/tests/ops_test

echo "==> all checks passed"
